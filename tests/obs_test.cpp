// Property tests for the observability layer (src/obs): counters stay
// exact and monotone under concurrent writers, scope trees remain
// well-formed (every enter matched by an exit), worker-side scopes
// attach under the scope that spawned the parallel work, resets keep
// cached registrations valid, and the JSON model round-trips. Runs
// under the ThreadSanitizer preset via `ctest -L tsan`.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace msd {
namespace {

const obs::ScopeNode* findChild(const obs::ScopeNode& parent,
                                const std::string& name) {
  for (const obs::ScopeNode* child : parent.children()) {
    if (child->name() == name) return child;
  }
  return nullptr;
}

void expectAllClosed(const obs::ScopeNode& node) {
  EXPECT_EQ(node.openCount(), 0) << "scope still open: " << node.name();
  for (const obs::ScopeNode* child : node.children()) {
    expectAllClosed(*child);
  }
}

/// Restores the pool size on scope exit so tests that resize the pool
/// do not leak their setting into later tests.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(threadCount()) {}
  ~ThreadCountGuard() { setThreadCount(saved_); }

 private:
  std::size_t saved_;
};

TEST(ObsCounterTest, ConcurrentAddsAreExact) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kAddsPerThread = 20000;
  obs::Counter& counter = obs::counter("obs_test.concurrent_adds");
  const std::uint64_t before = counter.value();

  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter] {
      for (std::size_t i = 0; i < kAddsPerThread; ++i) counter.add(3);
    });
  }
  for (std::thread& writer : writers) writer.join();

  EXPECT_EQ(counter.value(), before + kThreads * kAddsPerThread * 3);
}

TEST(ObsCounterTest, ReadsAreMonotoneUnderConcurrentWriters) {
  obs::Counter& counter = obs::counter("obs_test.monotone");
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> observed;
  observed.reserve(1 << 16);

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      observed.push_back(counter.value());
    }
    observed.push_back(counter.value());
  });
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < 4; ++t) {
    writers.emplace_back([&counter] {
      for (std::size_t i = 0; i < 50000; ++i) counter.add(1);
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  for (std::size_t i = 1; i < observed.size(); ++i) {
    ASSERT_GE(observed[i], observed[i - 1])
        << "counter reads went backwards at sample " << i;
  }
  EXPECT_EQ(observed.back(), counter.value());
}

TEST(ObsCounterTest, MacroCachedReferenceSurvivesReset) {
  MSD_COUNTER_ADD("obs_test.cached", 2);
  MSD_COUNTER_ADD("obs_test.cached", 2);
  EXPECT_EQ(obs::counterValue("obs_test.cached"), 4u);

  obs::resetAll();
  EXPECT_EQ(obs::counterValue("obs_test.cached"), 0u);

  // The function-local static inside the macro still points at the live
  // registration; adding after the reset must work and re-count from 0.
  MSD_COUNTER_ADD("obs_test.cached", 5);
  EXPECT_EQ(obs::counterValue("obs_test.cached"), 5u);

  bool found = false;
  for (const auto& [name, value] : obs::counterSnapshot()) {
    if (name == "obs_test.cached") found = true;
  }
  EXPECT_TRUE(found) << "resetAll dropped the registration";
}

TEST(ObsGaugeTest, SetAndAddInBothDirections) {
  MSD_GAUGE_SET("obs_test.gauge", 10);
  EXPECT_EQ(obs::gaugeValue("obs_test.gauge"), 10);
  MSD_GAUGE_ADD("obs_test.gauge", -4);
  EXPECT_EQ(obs::gaugeValue("obs_test.gauge"), 6);
  MSD_GAUGE_SET("obs_test.gauge", -1);
  EXPECT_EQ(obs::gaugeValue("obs_test.gauge"), -1);
}

TEST(ObsTraceTest, NestedScopesAreWellFormed) {
  {
    MSD_TRACE_SCOPE("obs_test.outer_nested");
    for (int i = 0; i < 3; ++i) {
      MSD_TRACE_SCOPE("obs_test.inner_nested");
    }
  }
  const obs::ScopeNode* outer =
      findChild(obs::traceRoot(), "obs_test.outer_nested");
  ASSERT_NE(outer, nullptr);
  const obs::ScopeNode* inner = findChild(*outer, "obs_test.inner_nested");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->calls(), 1u);
  EXPECT_EQ(inner->calls(), 3u);
  EXPECT_EQ(inner->parent(), outer);
  // The inner scope nested under the outer one, so it must not also
  // appear as a direct child of the root.
  EXPECT_EQ(findChild(obs::traceRoot(), "obs_test.inner_nested"), nullptr);
  expectAllClosed(obs::traceRoot());
}

TEST(ObsTraceTest, WorkerScopesAttachUnderSpawningScope) {
  ThreadCountGuard guard;
  setThreadCount(4);
  constexpr std::size_t kItems = 400;
  {
    MSD_TRACE_SCOPE("obs_test.spawning");
    parallelFor(0, kItems, 1, [](std::size_t) {
      MSD_TRACE_SCOPE("obs_test.worker_body");
    });
  }
  const obs::ScopeNode* spawning =
      findChild(obs::traceRoot(), "obs_test.spawning");
  ASSERT_NE(spawning, nullptr);
  const obs::ScopeNode* body = findChild(*spawning, "obs_test.worker_body");
  ASSERT_NE(body, nullptr)
      << "worker-side scope did not adopt the submitting scope";
  EXPECT_EQ(body->calls(), kItems);
  EXPECT_EQ(findChild(obs::traceRoot(), "obs_test.worker_body"), nullptr)
      << "worker-side scope dangled off a worker root";
  expectAllClosed(obs::traceRoot());
}

TEST(ObsTraceTest, ConcurrentScopesOnOneNodeAreRaceFree) {
  ThreadCountGuard guard;
  setThreadCount(8);
  constexpr std::size_t kItems = 5000;
  const obs::ScopeNode* shared = nullptr;
  {
    MSD_TRACE_SCOPE("obs_test.race_parent");
    parallelFor(0, kItems, 16, [](std::size_t) {
      MSD_TRACE_SCOPE("obs_test.race_child");
      MSD_COUNTER_ADD("obs_test.race_counter", 1);
    });
    const obs::ScopeNode* parent = obs::currentScope();
    shared = findChild(*parent, "obs_test.race_child");
  }
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->calls(), kItems);
  EXPECT_EQ(shared->openCount(), 0);
  expectAllClosed(obs::traceRoot());
}

TEST(ObsTraceTest, ResetStatsKeepsNodesAlive) {
  {
    MSD_TRACE_SCOPE("obs_test.reset_me");
  }
  const obs::ScopeNode* node = findChild(obs::traceRoot(), "obs_test.reset_me");
  ASSERT_NE(node, nullptr);
  EXPECT_GE(node->calls(), 1u);
  obs::resetAll();
  EXPECT_EQ(node->calls(), 0u);
  EXPECT_EQ(node->totalNanos(), 0u);
  // Same pointer, still registered under the root.
  EXPECT_EQ(findChild(obs::traceRoot(), "obs_test.reset_me"), node);
}

TEST(ObsRegistryTest, SnapshotHasSchemaAndSortedSections) {
  MSD_COUNTER_ADD("obs_test.zz_snapshot", 1);
  MSD_COUNTER_ADD("obs_test.aa_snapshot", 1);
  const obs::Json doc = obs::snapshotJson();
  ASSERT_TRUE(doc.isObject());
  const obs::Json* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->stringValue(), "msd-obs-v1");

  const obs::Json* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->isObject());
  std::string previous;
  for (const auto& [name, value] : counters->members()) {
    EXPECT_LE(previous, name) << "counters not name-sorted";
    previous = name;
  }
  ASSERT_NE(doc.find("gauges"), nullptr);
  const obs::Json* trace = doc.find("trace");
  ASSERT_NE(trace, nullptr);
  const obs::Json* rootName = trace->find("name");
  ASSERT_NE(rootName, nullptr);
  EXPECT_EQ(rootName->stringValue(), "root");
}

TEST(ObsRegistryTest, TimingsCanBeOmittedForStableReports) {
  {
    MSD_TRACE_SCOPE("obs_test.timed_scope");
  }
  const std::string with = obs::snapshotString({.includeTimings = true});
  const std::string without = obs::snapshotString({.includeTimings = false});
  EXPECT_NE(with.find("total_ms"), std::string::npos);
  EXPECT_EQ(without.find("total_ms"), std::string::npos);
}

TEST(ObsJsonTest, DumpParseRoundTrip) {
  obs::Json doc = obs::Json::object();
  doc.set("int", std::uint64_t{9007199254740993ull});  // > 2^53: int-exact
  doc.set("negative", std::int64_t{-42});
  doc.set("double", 1.5);
  doc.set("string", "line\nbreak \"quoted\" \\ tab\t");
  doc.set("flag", true);
  doc.set("nothing", nullptr);
  obs::Json list = obs::Json::array();
  list.push(1);
  list.push("two");
  list.push(3.25);
  doc.set("list", std::move(list));

  for (int indent : {-1, 2}) {
    const std::string text = doc.dump(indent);
    const obs::Json parsed = obs::Json::parse(text);
    EXPECT_EQ(parsed.dump(), doc.dump()) << "indent=" << indent;
    const obs::Json* big = parsed.find("int");
    ASSERT_NE(big, nullptr);
    ASSERT_TRUE(big->isInt()) << "64-bit integer decayed to double";
    EXPECT_EQ(big->intValue(), 9007199254740993ll);
  }
}

TEST(ObsJsonTest, ParseErrorsCarryByteOffsets) {
  for (const char* bad : {"{", "[1,]", "{\"a\":}", "tru", "\"unterminated",
                          "{} trailing", "{\"a\":1 \"b\":2}"}) {
    EXPECT_THROW(obs::Json::parse(bad), std::runtime_error) << bad;
    try {
      obs::Json::parse(bad);
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find("at byte"), std::string::npos)
          << "error lacks a byte offset: " << error.what();
    }
  }
}

}  // namespace
}  // namespace msd
