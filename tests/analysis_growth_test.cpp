#include "analysis/growth.h"

#include <gtest/gtest.h>

#include "analysis/metrics_over_time.h"
#include "gen/trace_generator.h"

namespace msd {
namespace {

EventStream handStream() {
  EventStream stream;
  // Day 0: 2 nodes. Day 1: 1 node, 1 edge. Day 2: 1 node, 2 edges.
  stream.appendNodeJoin(0.1);
  stream.appendNodeJoin(0.6);
  stream.appendNodeJoin(1.2);
  stream.appendEdgeAdd(1.5, 0, 1);
  stream.appendNodeJoin(2.1);
  stream.appendEdgeAdd(2.3, 1, 2);
  stream.appendEdgeAdd(2.8, 0, 3);
  return stream;
}

TEST(GrowthTest, DailyCountsExact) {
  const GrowthSeries series = analyzeGrowth(handStream());
  ASSERT_EQ(series.newNodes.size(), 3u);
  EXPECT_DOUBLE_EQ(series.newNodes.valueAt(0), 2.0);
  EXPECT_DOUBLE_EQ(series.newNodes.valueAt(1), 1.0);
  EXPECT_DOUBLE_EQ(series.newNodes.valueAt(2), 1.0);
  EXPECT_DOUBLE_EQ(series.newEdges.valueAt(0), 0.0);
  EXPECT_DOUBLE_EQ(series.newEdges.valueAt(1), 1.0);
  EXPECT_DOUBLE_EQ(series.newEdges.valueAt(2), 2.0);
}

TEST(GrowthTest, CumulativeTotalsExact) {
  const GrowthSeries series = analyzeGrowth(handStream());
  EXPECT_DOUBLE_EQ(series.totalNodes.valueAt(2), 4.0);
  EXPECT_DOUBLE_EQ(series.totalEdges.valueAt(2), 3.0);
}

TEST(GrowthTest, RelativeGrowthSkipsZeroBase) {
  const GrowthSeries series = analyzeGrowth(handStream());
  // Node growth defined from day 1 (previous total 2): 1/2 = 50%.
  ASSERT_EQ(series.nodeGrowthRate.size(), 2u);
  EXPECT_DOUBLE_EQ(series.nodeGrowthRate.valueAt(0), 50.0);
  // Edge growth defined only on day 2 (previous total 1): 200%.
  ASSERT_EQ(series.edgeGrowthRate.size(), 1u);
  EXPECT_DOUBLE_EQ(series.edgeGrowthRate.valueAt(0), 200.0);
}

TEST(GrowthTest, EmptyStream) {
  const GrowthSeries series = analyzeGrowth(EventStream{});
  EXPECT_TRUE(series.newNodes.empty());
}

TEST(GrowthTest, GeneratedTraceGrowsMonotonically) {
  TraceGenerator generator(GeneratorConfig::tiny(1));
  const GrowthSeries series = analyzeGrowth(generator.generate());
  for (std::size_t i = 1; i < series.totalNodes.size(); ++i) {
    EXPECT_GE(series.totalNodes.valueAt(i), series.totalNodes.valueAt(i - 1));
    EXPECT_GE(series.totalEdges.valueAt(i), series.totalEdges.valueAt(i - 1));
  }
}

TEST(MetricsOverTimeTest, HandStreamValues) {
  MetricsOverTimeConfig config;
  config.pathSamples = 10;
  config.clusteringSamples = 100;
  const MetricsOverTime metrics =
      analyzeMetricsOverTime(handStream(), config);
  // Day 2 snapshot: 4 nodes, 3 edges -> average degree 1.5.
  EXPECT_DOUBLE_EQ(metrics.averageDegree.valueAtOrBefore(2.0), 1.5);
  // The graph is a path 2-1-0-3: no triangles.
  EXPECT_DOUBLE_EQ(metrics.clusteringCoefficient.valueAtOrBefore(2.0), 0.0);
}

TEST(MetricsOverTimeTest, SeriesAlignToSchedule) {
  TraceGenerator generator(GeneratorConfig::tiny(2));
  const EventStream stream = generator.generate();
  MetricsOverTimeConfig config;
  config.snapshotStep = 10.0;
  config.pathEvery = 20.0;
  config.pathSamples = 8;
  config.clusteringSamples = 50;
  const MetricsOverTime metrics = analyzeMetricsOverTime(stream, config);
  EXPECT_GT(metrics.averageDegree.size(), 5u);
  EXPECT_GT(metrics.averagePathLength.size(), 2u);
  EXPECT_LT(metrics.averagePathLength.size(), metrics.averageDegree.size());
  for (std::size_t i = 0; i < metrics.assortativity.size(); ++i) {
    EXPECT_GE(metrics.assortativity.valueAt(i), -1.0);
    EXPECT_LE(metrics.assortativity.valueAt(i), 1.0);
  }
  for (std::size_t i = 0; i < metrics.clusteringCoefficient.size(); ++i) {
    EXPECT_GE(metrics.clusteringCoefficient.valueAt(i), 0.0);
    EXPECT_LE(metrics.clusteringCoefficient.valueAt(i), 1.0);
  }
}

TEST(MetricsOverTimeTest, EmptyStreamYieldsEmptySeries) {
  const MetricsOverTime metrics = analyzeMetricsOverTime(EventStream{});
  EXPECT_TRUE(metrics.averageDegree.empty());
}

}  // namespace
}  // namespace msd
