#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "gen/trace_generator.h"
#include "io/csv.h"
#include "io/event_io.h"
#include "io/graph_io.h"

namespace msd {
namespace {

EventStream sampleStream() {
  EventStream stream;
  stream.appendNodeJoin(0.0, Origin::kMain, 3);
  stream.appendNodeJoin(0.25, Origin::kSecond, kNoGroup);
  stream.appendNodeJoin(1.125, Origin::kPostMerge, 0);
  stream.appendEdgeAdd(1.5, 0, 1);
  stream.appendEdgeAdd(2.75, 1, 2);
  return stream;
}

void expectStreamsEqual(const EventStream& a, const EventStream& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Event& x = a.at(i);
    const Event& y = b.at(i);
    EXPECT_DOUBLE_EQ(x.time, y.time) << "event " << i;
    EXPECT_EQ(x.kind, y.kind) << "event " << i;
    EXPECT_EQ(x.origin, y.origin) << "event " << i;
    EXPECT_EQ(x.u, y.u) << "event " << i;
    if (x.kind == EventKind::kEdgeAdd) {
      EXPECT_EQ(x.v, y.v) << "event " << i;
    }
    if (x.kind == EventKind::kNodeJoin) {
      EXPECT_EQ(x.group, y.group) << "event " << i;
    }
  }
}

TEST(EventIoTest, TextRoundTrip) {
  const EventStream original = sampleStream();
  std::stringstream buffer;
  event_io::saveText(original, buffer);
  const EventStream loaded = event_io::loadText(buffer);
  expectStreamsEqual(original, loaded);
}

TEST(EventIoTest, BinaryRoundTrip) {
  const EventStream original = sampleStream();
  std::stringstream buffer;
  event_io::saveBinary(original, buffer);
  const EventStream loaded = event_io::loadBinary(buffer);
  expectStreamsEqual(original, loaded);
}

TEST(EventIoTest, GeneratedTraceRoundTripsBinary) {
  TraceGenerator generator(GeneratorConfig::tiny(3));
  const EventStream original = generator.generate();
  std::stringstream buffer;
  event_io::saveBinary(original, buffer);
  const EventStream loaded = event_io::loadBinary(buffer);
  expectStreamsEqual(original, loaded);
}

TEST(EventIoTest, TextRejectsBadMagic) {
  std::stringstream buffer("nope 1 0 0\n");
  EXPECT_THROW((void)event_io::loadText(buffer), std::runtime_error);
}

TEST(EventIoTest, TextRejectsBadVersion) {
  std::stringstream buffer("msdt 99 0 0\n");
  EXPECT_THROW((void)event_io::loadText(buffer), std::runtime_error);
}

TEST(EventIoTest, TextRejectsCountMismatch) {
  std::stringstream buffer("msdt 1 2 0\nN 0 0 0 0\n");
  EXPECT_THROW((void)event_io::loadText(buffer), std::runtime_error);
}

TEST(EventIoTest, TextRejectsUnknownTag) {
  std::stringstream buffer("msdt 1 1 0\nX 0 0 0 0\n");
  EXPECT_THROW((void)event_io::loadText(buffer), std::runtime_error);
}

TEST(EventIoTest, TextRejectsNonFiniteTimestamps) {
  // Regression: deserialization used to bypass the EventStream finite-
  // timestamp contract (append instead of appendChecked), so "+inf" and
  // "nan" in a text trace produced a stream that violated invariants
  // downstream. Both readers now route through the validated entry point.
  for (const char* time : {"inf", "+inf", "-inf", "nan"}) {
    std::stringstream join("msdt 1 1 0\nN " + std::string(time) + " 0 0 0\n");
    EXPECT_THROW((void)event_io::loadText(join), std::runtime_error) << time;
  }
  std::stringstream edge("msdt 1 2 1\nN 0 0 0 0\nN 0 1 0 0\nE inf 0 1\n");
  EXPECT_THROW((void)event_io::loadText(edge), std::runtime_error);
}

TEST(EventIoTest, BinaryRejectsNonFiniteTimestamps) {
  EventStream original = sampleStream();
  std::stringstream buffer;
  event_io::saveBinary(original, buffer);
  std::string bytes = buffer.str();
  // Patch the first record's timestamp (record layout: 24 bytes after
  // the 16-byte header, time first) to +inf.
  const double inf = std::numeric_limits<double>::infinity();
  std::memcpy(bytes.data() + 16, &inf, sizeof(inf));
  std::stringstream patched(bytes);
  EXPECT_THROW((void)event_io::loadBinary(patched), std::runtime_error);
}

TEST(EventIoTest, TemporalEdgeListRejectsNonFiniteTimestamps) {
  std::stringstream in("0 1 inf\n");
  EXPECT_THROW((void)event_io::loadTemporalEdgeList(in), std::runtime_error);
}

TEST(EventIoTest, BinaryRejectsTruncation) {
  const EventStream original = sampleStream();
  std::stringstream buffer;
  event_io::saveBinary(original, buffer);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() - 5);
  std::stringstream truncated(bytes);
  EXPECT_THROW((void)event_io::loadBinary(truncated), std::runtime_error);
}

TEST(EventIoTest, BinaryRejectsBadMagic) {
  std::stringstream buffer("garbage-garbage-garbage");
  EXPECT_THROW((void)event_io::loadBinary(buffer), std::runtime_error);
}

TEST(EventIoTest, FileRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "msd_io_test.events";
  const EventStream original = sampleStream();
  event_io::saveBinaryFile(original, path.string());
  const EventStream loaded = event_io::loadBinaryFile(path.string());
  expectStreamsEqual(original, loaded);
  fs::remove(path);
}

TEST(EventIoTest, MissingFileThrows) {
  EXPECT_THROW((void)event_io::loadBinaryFile("/nonexistent/path.bin"),
               std::runtime_error);
  EXPECT_THROW((void)event_io::loadTextFile("/nonexistent/path.txt"),
               std::runtime_error);
}

TEST(GraphIoTest, EdgeListRoundTripPreservesIsolatedNodes) {
  Graph graph(6);
  graph.addEdge(0, 1);
  graph.addEdge(1, 2);
  graph.addEdge(4, 2);
  std::stringstream buffer;
  graph_io::saveEdgeList(graph, buffer);
  const Graph loaded = graph_io::loadEdgeList(buffer);
  EXPECT_EQ(loaded.nodeCount(), 6u);  // node 5 isolated, kept via header
  EXPECT_EQ(loaded.edgeCount(), 3u);
  EXPECT_TRUE(loaded.hasEdge(0, 1));
  EXPECT_TRUE(loaded.hasEdge(2, 4));
}

TEST(GraphIoTest, PlainEdgeListWithoutHeader) {
  std::stringstream buffer("0 1\n1 2\n% a comment\n2 3\n");
  const Graph loaded = graph_io::loadEdgeList(buffer);
  EXPECT_EQ(loaded.nodeCount(), 4u);
  EXPECT_EQ(loaded.edgeCount(), 3u);
}

TEST(GraphIoTest, MalformedLineThrows) {
  std::stringstream buffer("0 x\n");
  EXPECT_THROW((void)graph_io::loadEdgeList(buffer), std::runtime_error);
}

TEST(CsvTest, WritesHeaderAndRows) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "msd_csv_test.csv";
  {
    CsvWriter writer(path.string());
    const std::vector<std::string> columns = {"a", "b"};
    writer.header(columns);
    const std::vector<double> row = {1.5, 2.5};
    writer.row(row);
    writer.row("label", row);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "label,1.5,2.5");
  fs::remove(path);
}

TEST(CsvTest, SeriesCsvAlignsTimeAxes) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "msd_series_test.csv";
  TimeSeries a("a"), b("b");
  a.add(0.0, 1.0);
  a.add(2.0, 3.0);
  b.add(1.0, 10.0);
  const std::vector<TimeSeries> series = {a, b};
  writeSeriesCsv(path.string(), series);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "time,a,b");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3);  // union of {0,1,2}
  fs::remove(path);
}

TEST(CsvTest, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace msd
