// Round-trip and fuzz coverage of the msd-bin-v1 binary event log
// (src/io/binary_event_log.h): every EventStream must survive
// write -> read with exact field equality (times compared by bit
// pattern), the writer must be deterministic byte-for-byte, edge cases
// (empty streams, duplicate-edge attempts, identical and maximally
// distant timestamps) must hold, and the varint decoder must never
// crash or over-read on arbitrary bytes.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "gen/trace_generator.h"
#include "graph/event_stream.h"
#include "io/binary_event_log.h"
#include "io/wire.h"
#include "util/rng.h"

namespace msd {
namespace {

namespace fs = std::filesystem;

std::string tempPath(const std::string& name) {
  return (fs::temp_directory_path() / ("msd_binio_" + name)).string();
}

std::string readFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Field-exact event equality; times compared by bit pattern so the
/// check would catch any lossy timestamp encoding.
void expectSameEvents(const EventStream& a, const EventStream& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.nodeCount(), b.nodeCount());
  ASSERT_EQ(a.edgeCount(), b.edgeCount());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Event& x = a.events()[i];
    const Event& y = b.events()[i];
    EXPECT_EQ(std::bit_cast<std::uint64_t>(x.time),
              std::bit_cast<std::uint64_t>(y.time))
        << "event " << i;
    EXPECT_EQ(x.kind, y.kind) << "event " << i;
    EXPECT_EQ(x.origin, y.origin) << "event " << i;
    EXPECT_EQ(x.u, y.u) << "event " << i;
    EXPECT_EQ(x.v, y.v) << "event " << i;
    EXPECT_EQ(x.group, y.group) << "event " << i;
  }
}

EventStream roundTrip(const EventStream& stream,
                      const io::BinaryLogOptions& options,
                      const std::string& name) {
  const std::string path = tempPath(name);
  io::writeBinaryLogFile(stream, path, options);
  io::BinaryEventReader reader(path);
  EXPECT_EQ(reader.eventCount(), stream.size());
  EXPECT_EQ(reader.nodeCount(), stream.nodeCount());
  EXPECT_EQ(reader.edgeCount(), stream.edgeCount());
  EventStream back = reader.readAll();
  fs::remove(path);
  return back;
}

TEST(BinaryEventIoTest, GeneratedTraceRoundTripsExactly) {
  TraceGenerator generator(GeneratorConfig::tiny(7));
  const EventStream stream = generator.generate();
  ASSERT_GT(stream.size(), 1000u);
  const EventStream back = roundTrip(stream, {}, "roundtrip.msdbin");
  expectSameEvents(stream, back);
}

TEST(BinaryEventIoTest, TinyBlocksForceMultiBlockFiles) {
  TraceGenerator generator(GeneratorConfig::tiny(11));
  const EventStream stream = generator.generate();
  io::BinaryLogOptions options;
  options.blockCapacityBytes = 64;  // the enforced minimum
  const std::string path = tempPath("multiblock.msdbin");
  const io::BinaryEventWriter::Stats stats =
      io::writeBinaryLogFile(stream, path, options);
  EXPECT_GT(stats.blockCount, stream.size() / 8)
      << "64-byte blocks should hold only a handful of events each";
  io::BinaryEventReader reader(path);
  EXPECT_EQ(reader.blockCount(), stats.blockCount);
  expectSameEvents(stream, reader.readAll());
  fs::remove(path);
}

TEST(BinaryEventIoTest, WriterIsDeterministicByteForByte) {
  TraceGenerator generator(GeneratorConfig::tiny(3));
  const EventStream stream = generator.generate();
  io::BinaryLogOptions options;
  options.seed = 3;
  options.manifestJson =
      "{\"schema\":\"msd-run-v1\",\"build_type\":\"Release\","
      "\"build_flags\":[],\"obs\":true,\"git\":\"pinned\",\"seed\":3,"
      "\"threads\":1,\"args\":[]}";
  const std::string pathA = tempPath("det_a.msdbin");
  const std::string pathB = tempPath("det_b.msdbin");
  io::writeBinaryLogFile(stream, pathA, options);
  io::writeBinaryLogFile(stream, pathB, options);
  EXPECT_EQ(readFileBytes(pathA), readFileBytes(pathB));
  fs::remove(pathA);
  fs::remove(pathB);
}

TEST(BinaryEventIoTest, EmptyStreamRoundTrips) {
  const EventStream empty;
  const std::string path = tempPath("empty.msdbin");
  const io::BinaryEventWriter::Stats stats =
      io::writeBinaryLogFile(empty, path, {});
  EXPECT_EQ(stats.eventCount, 0u);
  EXPECT_EQ(stats.blockCount, 0u);
  io::BinaryEventReader reader(path);
  EXPECT_EQ(reader.eventCount(), 0u);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_TRUE(reader.nextChunk(std::numeric_limits<Day>::infinity(), 1024)
                  .empty());
  expectSameEvents(empty, reader.readAll());
  fs::remove(path);
}

TEST(BinaryEventIoTest, HandAssembledEdgeCasesRoundTrip) {
  // Identical timestamps (a bulk import), the maximal double jump
  // (0 -> huge), zero-delta edges, group-less and grouped joins, and
  // endpoint deltas in both directions.
  EventStream stream;
  stream.appendChecked(Event::nodeJoin(0.0, 0, Origin::kMain, kNoGroup));
  stream.appendChecked(Event::nodeJoin(0.0, 1, Origin::kSecond, 5));
  stream.appendChecked(Event::nodeJoin(0.0, 2, Origin::kPostMerge, 0));
  stream.appendChecked(
      Event::nodeJoin(std::numeric_limits<double>::max(), 3, Origin::kMain,
                      std::numeric_limits<GroupId>::max() - 1));
  stream.appendChecked(
      Event::edgeAdd(std::numeric_limits<double>::max(), 3, 0));
  stream.appendChecked(
      Event::edgeAdd(std::numeric_limits<double>::max(), 3, 1));
  stream.appendChecked(
      Event::edgeAdd(std::numeric_limits<double>::max(), 1, 2));
  // Duplicate edge events are legal trace content (the EventStream
  // contract allows them; replay layers deduplicate) and must encode
  // losslessly, including the zero endpoint deltas.
  stream.appendChecked(
      Event::edgeAdd(std::numeric_limits<double>::max(), 1, 2));
  const EventStream back = roundTrip(stream, {}, "edgecases.msdbin");
  expectSameEvents(stream, back);
}

TEST(BinaryEventIoTest, WriterRejectsInvalidEvents) {
  const std::string path = tempPath("reject.msdbin");
  {
    io::BinaryEventWriter writer(path, {});
    writer.push(Event::nodeJoin(1.0, 0));
    writer.push(Event::nodeJoin(1.0, 1));
    writer.push(Event::edgeAdd(2.0, 0, 1));
    // Self loop.
    EXPECT_THROW(writer.push(Event::edgeAdd(3.0, 1, 1)), std::runtime_error);
    // Non-dense join id.
    EXPECT_THROW(writer.push(Event::nodeJoin(3.0, 7)), std::runtime_error);
    // Time going backwards.
    EXPECT_THROW(writer.push(Event::nodeJoin(0.5, 2)), std::runtime_error);
    // Non-finite timestamp.
    EXPECT_THROW(
        writer.push(
            Event::nodeJoin(std::numeric_limits<double>::infinity(), 2)),
        std::runtime_error);
    // Edge to an unknown node.
    EXPECT_THROW(writer.push(Event::edgeAdd(3.0, 0, 9)), std::runtime_error);
  }
  fs::remove(path);
}

TEST(BinaryEventIoTest, ReaderChunksRespectBoundAndCap) {
  EventStream stream;
  for (NodeId i = 0; i < 100; ++i) {
    stream.appendChecked(
        Event::nodeJoin(static_cast<Day>(i), i, Origin::kMain, kNoGroup));
  }
  const std::string path = tempPath("chunks.msdbin");
  io::writeBinaryLogFile(stream, path, {});
  io::BinaryEventReader reader(path);
  // Bound: only events strictly below day 10.
  std::size_t below = 0;
  while (true) {
    const auto chunk = reader.nextChunk(10.0, 1024);
    if (chunk.empty()) break;
    for (const Event& e : chunk) EXPECT_LT(e.time, 10.0);
    below += chunk.size();
  }
  EXPECT_EQ(below, 10u);
  EXPECT_FALSE(reader.exhausted());
  // Cap: chunks never exceed maxEvents.
  std::size_t rest = 0;
  while (true) {
    const auto chunk =
        reader.nextChunk(std::numeric_limits<Day>::infinity(), 7);
    if (chunk.empty()) break;
    EXPECT_LE(chunk.size(), 7u);
    rest += chunk.size();
  }
  EXPECT_EQ(rest, 90u);
  EXPECT_TRUE(reader.exhausted());
  fs::remove(path);
}

// --- varint layer ---------------------------------------------------

TEST(WireTest, VarintRoundTripsBoundaryValues) {
  const std::uint64_t values[] = {
      0,
      1,
      127,
      128,
      16383,
      16384,
      std::uint64_t{1} << 32,
      std::numeric_limits<std::uint64_t>::max() - 1,
      std::numeric_limits<std::uint64_t>::max(),
  };
  for (const std::uint64_t value : values) {
    std::uint8_t buffer[io::kMaxVarintBytes] = {};
    const std::size_t n = io::encodeVarint(value, buffer);
    ASSERT_GE(n, 1u);
    ASSERT_LE(n, io::kMaxVarintBytes);
    const io::VarintDecode decoded = io::decodeVarint(buffer, n);
    EXPECT_TRUE(decoded.ok) << value;
    EXPECT_EQ(decoded.value, value);
    EXPECT_EQ(decoded.bytes, n);
    // Truncated input must fail cleanly, not read past the buffer.
    const io::VarintDecode truncated = io::decodeVarint(buffer, n - 1);
    EXPECT_FALSE(truncated.ok) << value;
  }
}

TEST(WireTest, ZigzagRoundTripsExtremes) {
  const std::int64_t values[] = {
      0, -1, 1, std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t value : values) {
    EXPECT_EQ(io::zigzagDecode(io::zigzagEncode(value)), value);
  }
}

TEST(WireTest, VarintDecoderFuzz5000) {
  // 5000 random buffers: the decoder must never crash, never report more
  // bytes than offered, and any accepted value must survive a canonical
  // re-encode/decode cycle. (LEB128 itself admits non-canonical inputs
  // like 0x80 0x00, so byte-level equality is only demanded one way.)
  Rng rng(20240808);
  for (int trial = 0; trial < 5000; ++trial) {
    std::uint8_t buffer[16];
    const std::size_t len = static_cast<std::size_t>(rng.uniformInt(17));
    for (std::size_t i = 0; i < len; ++i) {
      buffer[i] = static_cast<std::uint8_t>(rng.uniformInt(256));
    }
    const io::VarintDecode decoded = io::decodeVarint(buffer, len);
    if (!decoded.ok) continue;
    ASSERT_GE(decoded.bytes, 1u);
    ASSERT_LE(decoded.bytes, std::min(len, io::kMaxVarintBytes));
    std::uint8_t reencoded[io::kMaxVarintBytes] = {};
    const std::size_t n = io::encodeVarint(decoded.value, reencoded);
    ASSERT_LE(n, decoded.bytes) << "trial " << trial;
    const io::VarintDecode again = io::decodeVarint(reencoded, n);
    ASSERT_TRUE(again.ok) << "trial " << trial;
    EXPECT_EQ(again.value, decoded.value) << "trial " << trial;
    EXPECT_EQ(again.bytes, n) << "trial " << trial;
  }
}

TEST(WireTest, OverlongVarintsAreRejected) {
  // 11 continuation bytes: longer than any canonical u64 encoding.
  std::uint8_t overlong[12];
  std::fill(std::begin(overlong), std::end(overlong),
            static_cast<std::uint8_t>(0x80));
  EXPECT_FALSE(io::decodeVarint(overlong, sizeof(overlong)).ok);
  // 10 bytes whose final byte would overflow bit 63.
  std::uint8_t overflow[10];
  std::fill(std::begin(overflow), std::end(overflow),
            static_cast<std::uint8_t>(0xff));
  overflow[9] = 0x02;
  EXPECT_FALSE(io::decodeVarint(overflow, sizeof(overflow)).ok);
  // The same shape ending in <= 0x01 is the maximal legal encoding.
  overflow[9] = 0x01;
  const io::VarintDecode maximal = io::decodeVarint(overflow, sizeof(overflow));
  EXPECT_TRUE(maximal.ok);
  EXPECT_EQ(maximal.value, std::numeric_limits<std::uint64_t>::max());
}

TEST(WireTest, Crc32MatchesKnownVector) {
  // The classic IEEE test vector.
  EXPECT_EQ(io::crc32("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(io::crc32("", 0), 0x00000000u);
}

}  // namespace
}  // namespace msd
