// Verifies the compiled-out side of the contract layer: this TU pins
// MSD_CONTRACTS_ENABLED=0 (via CMake), so the gated MSD_CHECK macros must
// not evaluate their conditions at all, while the always-on validators
// and MSD_CHECK_ALWAYS keep working — they are what tests and explicit
// callers rely on in Release builds.

#include "util/contracts.h"

#include <gtest/gtest.h>

#include <vector>

#include "community/partition.h"
#include "graph/csr.h"

static_assert(MSD_CONTRACTS_ENABLED == 0,
              "contracts_disabled_test must build with contracts off");

namespace msd {
namespace {

TEST(ContractsDisabledTest, FailingCheckIsANoOp) {
  EXPECT_NO_THROW(MSD_CHECK(false));
  EXPECT_NO_THROW(MSD_CHECK_MSG(false, "never thrown"));
}

TEST(ContractsDisabledTest, ConditionIsNotEvaluated) {
  int calls = 0;
  MSD_CHECK([&] {
    ++calls;
    return false;
  }());
  MSD_CHECK_MSG([&] {
    ++calls;
    return false;
  }(),
                "side effects must not run");
  EXPECT_EQ(calls, 0);
}

TEST(ContractsDisabledTest, AlwaysVariantStillFires) {
  EXPECT_THROW(MSD_CHECK_ALWAYS(false), ContractViolation);
  EXPECT_THROW(MSD_CHECK_ALWAYS_MSG(false, "msg"), ContractViolation);
}

TEST(ContractsDisabledTest, ExplicitValidatorsStillFire) {
  // checkInvariants() uses MSD_CHECK_ALWAYS internally, so corrupted
  // structures are still caught when a caller asks for validation.
  const CsrGraph badCsr = CsrGraph::fromRawParts({0, 1, 2}, {0, 0}, false);
  EXPECT_THROW(badCsr.checkInvariants(), ContractViolation);
  const Partition badPartition(std::vector<CommunityId>{1, 0});
  EXPECT_THROW(badPartition.checkInvariants(), ContractViolation);
}

}  // namespace
}  // namespace msd
