// Property tests for Louvain on parameterized planted structures: rings
// of cliques (ground truth known exactly) across sizes, counts, and
// seeds.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "community/louvain.h"
#include "metrics/modularity.h"
#include "util/rng.h"

namespace msd {
namespace {

/// A ring of `k` cliques with `n` nodes each, adjacent cliques joined by
/// one bridge edge — the classic planted-partition benchmark where the
/// optimal partition is one community per clique (for n >= 3, moderate k).
Graph ringOfCliques(std::size_t k, std::size_t n) {
  Graph g(k * n);
  for (std::size_t c = 0; c < k; ++c) {
    const NodeId base = static_cast<NodeId>(c * n);
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) g.addEdge(base + i, base + j);
    }
    const NodeId nextBase = static_cast<NodeId>(((c + 1) % k) * n);
    g.addEdge(base + static_cast<NodeId>(n - 1), nextBase);
  }
  return g;
}

/// Ground-truth labels for the ring of cliques.
std::vector<std::uint32_t> ringTruth(std::size_t k, std::size_t n) {
  std::vector<std::uint32_t> labels(k * n);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      labels[c * n + i] = static_cast<std::uint32_t>(c);
    }
  }
  return labels;
}

using RingParam = std::tuple<int, int, std::uint64_t>;  // k, n, seed

class RingOfCliquesTest : public ::testing::TestWithParam<RingParam> {};

TEST_P(RingOfCliquesTest, RecoversPlantedPartition) {
  const auto [k, n, seed] = GetParam();
  const Graph g = ringOfCliques(static_cast<std::size_t>(k),
                                static_cast<std::size_t>(n));
  LouvainConfig config;
  config.delta = 0.0001;
  config.seed = seed;
  const LouvainResult result = louvain(g, config);

  // Louvain may occasionally merge adjacent cliques at small n, but must
  // never do worse than the planted structure by much, and members of
  // one clique must always stay together.
  const std::vector<std::uint32_t> truth =
      ringTruth(static_cast<std::size_t>(k), static_cast<std::size_t>(n));
  const double plantedQ = modularity(g, truth);
  EXPECT_GE(result.modularity, plantedQ - 0.02);

  for (int c = 0; c < k; ++c) {
    const NodeId base = static_cast<NodeId>(c * n);
    const CommunityId label = result.partition.communityOf(base);
    for (int i = 1; i < n; ++i) {
      EXPECT_EQ(result.partition.communityOf(base + static_cast<NodeId>(i)),
                label)
          << "clique " << c << " torn apart";
    }
  }
  // Number of communities close to k.
  const std::size_t found = result.partition.communityCount();
  EXPECT_GE(found, static_cast<std::size_t>(k) / 2);
  EXPECT_LE(found, static_cast<std::size_t>(k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RingOfCliquesTest,
    ::testing::Combine(::testing::Values(4, 8, 16),
                       ::testing::Values(5, 8, 12),
                       ::testing::Values(1u, 9u)));

class IncrementalStabilityTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalStabilityTest, SeededRerunKeepsPartitionOnStaticGraph) {
  // On an unchanged graph, rerunning Louvain seeded with its own output
  // must not lose modularity.
  const Graph g = ringOfCliques(10, 6);
  LouvainConfig config;
  config.delta = 0.001;
  config.seed = GetParam();
  const LouvainResult first = louvain(g, config);
  const LouvainResult second = louvain(g, config, &first.partition);
  EXPECT_GE(second.modularity, first.modularity - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalStabilityTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(LouvainGrowthTest, IncrementalTracksManySnapshots) {
  // Grow a ring of cliques one clique at a time, reusing the previous
  // partition; the recovered community count must track the clique count.
  Rng rng(3);
  Graph g;
  Partition previous;
  bool seeded = false;
  const std::size_t cliqueSize = 6;
  for (std::size_t k = 1; k <= 12; ++k) {
    const NodeId base = static_cast<NodeId>(g.nodeCount());
    for (std::size_t i = 0; i < cliqueSize; ++i) g.addNode();
    for (NodeId i = 0; i < cliqueSize; ++i) {
      for (NodeId j = i + 1; j < cliqueSize; ++j) {
        g.addEdge(base + i, base + j);
      }
    }
    if (base > 0) {
      g.addEdge(base, static_cast<NodeId>(rng.uniformInt(base)));
    }
    LouvainConfig config;
    config.delta = 0.001;
    const LouvainResult result =
        louvain(g, config, seeded ? &previous : nullptr);
    previous = result.partition;
    seeded = true;
    if (k >= 3) {
      EXPECT_GE(result.partition.communityCount(), k - 1);
      EXPECT_LE(result.partition.communityCount(), k);
    }
  }
}

TEST(LouvainEdgeCaseTest, TwoNodesOneEdge) {
  Graph g(2);
  g.addEdge(0, 1);
  const LouvainResult result = louvain(g);
  // A single edge: both nodes end in one community (Q = 0) or stay
  // separate (Q = -0.5); Louvain must pick the former.
  EXPECT_EQ(result.partition.communityCount(), 1u);
}

TEST(LouvainEdgeCaseTest, SelfConsistentAcrossDeltaExtremes) {
  const Graph g = ringOfCliques(6, 6);
  const LouvainResult tight = louvain(g, {.delta = 1e-9});
  const LouvainResult loose = louvain(g, {.delta = 0.3});
  // The tight threshold can only do at least as well.
  EXPECT_GE(tight.modularity, loose.modularity - 1e-9);
}

}  // namespace
}  // namespace msd
