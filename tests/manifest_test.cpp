// Run-provenance manifest contract (obs/manifest.h): msd-run-v1
// serialization round-trips, schema violations are context-qualified
// errors, comparability covers exactly {build type, build flags, obs,
// threads, seed} while git/args stay recorded-but-uncompared, and the
// tools/bench_compare CLI enforces the provenance gate end to end
// (exit 2 on mismatched runs, overridable with --allow-mismatch).

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/manifest.h"

namespace msd {
namespace {

namespace fs = std::filesystem;

obs::RunManifest sampleManifest() {
  obs::RunManifest manifest;
  manifest.buildType = "Release";
  manifest.buildFlags = {"contracts", "tsan"};
  manifest.obsEnabled = true;
  manifest.gitDescribe = "abc1234";
  manifest.seed = 42;
  manifest.threads = 8;
  manifest.args = {"generate", "--scale=tiny"};
  return manifest;
}

TEST(ManifestTest, JsonRoundTripPreservesEveryField) {
  const obs::RunManifest manifest = sampleManifest();
  const obs::Json json = obs::manifestJson(manifest);
  EXPECT_EQ(json.find("schema")->stringValue(), obs::kRunSchema);

  const obs::RunManifest parsed = obs::parseManifest(json, "test");
  EXPECT_EQ(parsed.buildType, manifest.buildType);
  EXPECT_EQ(parsed.buildFlags, manifest.buildFlags);
  EXPECT_EQ(parsed.obsEnabled, manifest.obsEnabled);
  EXPECT_EQ(parsed.gitDescribe, manifest.gitDescribe);
  EXPECT_EQ(parsed.seed, manifest.seed);
  EXPECT_EQ(parsed.threads, manifest.threads);
  EXPECT_EQ(parsed.args, manifest.args);
  EXPECT_TRUE(obs::manifestMismatches(manifest, parsed).empty());
}

TEST(ManifestTest, CurrentManifestReflectsRunSideSetters) {
  obs::setManifestSeed(1234);
  obs::setManifestThreads(3);
  obs::setManifestArgs({"manifest_test", "--flag"});
  const obs::RunManifest manifest = obs::currentManifest();
  EXPECT_EQ(manifest.seed, 1234);
  EXPECT_EQ(manifest.threads, 3);
  ASSERT_EQ(manifest.args.size(), 2u);
  EXPECT_EQ(manifest.args[0], "manifest_test");
  // Build-side facts are baked in at compile time and always present.
  EXPECT_FALSE(manifest.buildType.empty());
  EXPECT_FALSE(manifest.gitDescribe.empty());
}

TEST(ManifestTest, ParseRejectsSchemaViolationsWithContext) {
  struct Case {
    const char* label;
    void (*mutate)(obs::Json&);
  };
  const Case cases[] = {
      {"wrong schema", [](obs::Json& j) { j.set("schema", "msd-run-v2"); }},
      {"missing build_type",
       [](obs::Json& j) { j.set("build_type", nullptr); }},
      {"flags not an array",
       [](obs::Json& j) { j.set("build_flags", "tsan"); }},
      {"non-string flag",
       [](obs::Json& j) {
         obs::Json flags = obs::Json::array();
         flags.push(std::uint64_t{3});
         j.set("build_flags", std::move(flags));
       }},
      {"obs not bool", [](obs::Json& j) { j.set("obs", "yes"); }},
      {"seed not int", [](obs::Json& j) { j.set("seed", 1.5); }},
      {"args not array", [](obs::Json& j) { j.set("args", "generate"); }},
  };
  for (const Case& testCase : cases) {
    obs::Json json = obs::manifestJson(sampleManifest());
    testCase.mutate(json);
    try {
      obs::parseManifest(json, "ctx_marker");
      FAIL() << testCase.label << ": did not throw";
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find("ctx_marker"),
                std::string::npos)
          << testCase.label << ": error lacks context: " << error.what();
    }
  }
  EXPECT_THROW(obs::parseManifest(obs::Json("text"), "ctx"),
               std::runtime_error);
}

TEST(ManifestTest, MismatchesCoverComparabilityFieldsOnly) {
  const obs::RunManifest base = sampleManifest();

  // git and args differences are recorded but never a mismatch: diffing
  // a fresh run against an older commit's baseline is the whole point.
  obs::RunManifest drifted = base;
  drifted.gitDescribe = "def5678-dirty";
  drifted.args = {"totally", "different"};
  EXPECT_TRUE(obs::manifestMismatches(base, drifted).empty());

  struct Case {
    const char* field;
    void (*mutate)(obs::RunManifest&);
  };
  const Case cases[] = {
      {"build_type", [](obs::RunManifest& m) { m.buildType = "Debug"; }},
      {"build_flags", [](obs::RunManifest& m) { m.buildFlags = {"asan"}; }},
      {"obs", [](obs::RunManifest& m) { m.obsEnabled = false; }},
      {"seed", [](obs::RunManifest& m) { m.seed = 7; }},
      {"threads", [](obs::RunManifest& m) { m.threads = 1; }},
  };
  for (const Case& testCase : cases) {
    obs::RunManifest changed = base;
    testCase.mutate(changed);
    const std::vector<std::string> mismatches =
        obs::manifestMismatches(base, changed);
    ASSERT_EQ(mismatches.size(), 1u) << testCase.field;
    EXPECT_NE(mismatches[0].find(testCase.field), std::string::npos)
        << "mismatch message '" << mismatches[0] << "' lacks the field name";
  }
}

#ifdef BENCH_COMPARE_BINARY

void writeBenchReport(const fs::path& path, const std::string& benchmark,
                      double medianMs, const obs::RunManifest& manifest) {
  obs::Json doc = obs::Json::object();
  doc.set("schema", "msd-bench-v1");
  doc.set("benchmark", benchmark);
  doc.set("scale", "tiny");
  doc.set("seed", std::uint64_t{1});
  doc.set("threads", std::uint64_t{2});
  doc.set("run", obs::manifestJson(manifest));
  obs::Json measurement = obs::Json::object();
  measurement.set("name", "total");
  measurement.set("samples", std::uint64_t{1});
  obs::Json wall = obs::Json::object();
  wall.set("median", medianMs);
  wall.set("p10", medianMs);
  wall.set("p90", medianMs);
  measurement.set("wall_ms", std::move(wall));
  obs::Json measurements = obs::Json::array();
  measurements.push(std::move(measurement));
  doc.set("measurements", std::move(measurements));
  doc.set("counters", obs::Json::object());
  std::ofstream out(path, std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out << doc.dump(2) << "\n";
}

int runCli(const std::string& args) {
  const std::string command =
      std::string(BENCH_COMPARE_BINARY) + " " + args + " > /dev/null 2>&1";
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(ManifestCliTest, BenchCompareRefusesCrossProvenanceRuns) {
  const fs::path dir =
      fs::path(testing::TempDir()) / "manifest_cli";
  fs::remove_all(dir);
  fs::create_directories(dir / "old");
  fs::create_directories(dir / "new");

  obs::RunManifest oldManifest = sampleManifest();
  obs::RunManifest newManifest = sampleManifest();
  newManifest.threads = 2;  // comparability violation
  newManifest.gitDescribe = "other";  // recorded, never compared
  writeBenchReport(dir / "old" / "BENCH_fig1.json", "fig1", 10.0,
                   oldManifest);
  writeBenchReport(dir / "new" / "BENCH_fig1.json", "fig1", 10.0,
                   newManifest);

  const std::string oldPath = (dir / "old").string();
  const std::string newPath = (dir / "new").string();
  // Mismatched provenance: operator error, exit 2.
  EXPECT_EQ(runCli(oldPath + " " + newPath), 2);
  // The override downgrades the gate; identical numbers then pass.
  EXPECT_EQ(runCli("--allow-mismatch " + oldPath + " " + newPath), 0);

  // Matching provenance passes without any override.
  writeBenchReport(dir / "new" / "BENCH_fig1.json", "fig1", 10.0,
                   oldManifest);
  EXPECT_EQ(runCli(oldPath + " " + newPath), 0);
}

#endif  // BENCH_COMPARE_BINARY

}  // namespace
}  // namespace msd
