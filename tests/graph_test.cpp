#include "graph/graph.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <utility>

namespace msd {
namespace {

TEST(GraphTest, StartsEmpty) {
  Graph g;
  EXPECT_EQ(g.nodeCount(), 0u);
  EXPECT_EQ(g.edgeCount(), 0u);
}

TEST(GraphTest, AddNodeReturnsSequentialIds) {
  Graph g;
  EXPECT_EQ(g.addNode(), 0u);
  EXPECT_EQ(g.addNode(), 1u);
  EXPECT_EQ(g.addNode(), 2u);
  EXPECT_EQ(g.nodeCount(), 3u);
}

TEST(GraphTest, ConstructWithNodes) {
  Graph g(5);
  EXPECT_EQ(g.nodeCount(), 5u);
  for (NodeId n = 0; n < 5; ++n) EXPECT_EQ(g.degree(n), 0u);
}

TEST(GraphTest, EnsureNodeGrows) {
  Graph g;
  g.ensureNode(9);
  EXPECT_EQ(g.nodeCount(), 10u);
  g.ensureNode(3);  // no shrink
  EXPECT_EQ(g.nodeCount(), 10u);
}

TEST(GraphTest, AddEdgeIsUndirected) {
  Graph g(3);
  EXPECT_TRUE(g.addEdge(0, 2));
  EXPECT_TRUE(g.hasEdge(0, 2));
  EXPECT_TRUE(g.hasEdge(2, 0));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.edgeCount(), 1u);
}

TEST(GraphTest, DuplicateEdgeRejected) {
  Graph g(2);
  EXPECT_TRUE(g.addEdge(0, 1));
  EXPECT_FALSE(g.addEdge(0, 1));
  EXPECT_FALSE(g.addEdge(1, 0));
  EXPECT_EQ(g.edgeCount(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(GraphTest, SelfLoopThrows) {
  Graph g(2);
  EXPECT_THROW((void)g.addEdge(1, 1), std::invalid_argument);
}

TEST(GraphTest, OutOfRangeThrows) {
  Graph g(2);
  EXPECT_THROW((void)g.addEdge(0, 2), std::invalid_argument);
  EXPECT_THROW((void)g.hasEdge(5, 0), std::invalid_argument);
  EXPECT_THROW((void)g.degree(2), std::invalid_argument);
  EXPECT_THROW((void)g.neighbors(2), std::invalid_argument);
}

TEST(GraphTest, NeighborsReflectInsertionOrder) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(0, 3);
  g.addEdge(0, 2);
  const auto neighbors = g.neighbors(0);
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_EQ(neighbors[0], 1u);
  EXPECT_EQ(neighbors[1], 3u);
  EXPECT_EQ(neighbors[2], 2u);
}

TEST(GraphTest, ForEachEdgeVisitsEachOnce) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 3);
  g.addEdge(0, 3);
  std::set<std::pair<NodeId, NodeId>> seen;
  g.forEachEdge([&](NodeId u, NodeId v) {
    EXPECT_LT(u, v);
    seen.emplace(u, v);
  });
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count({0, 1}));
  EXPECT_TRUE(seen.count({0, 3}));
}

TEST(GraphTest, TotalDegreeIsTwiceEdges) {
  Graph g(5);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(3, 4);
  EXPECT_EQ(g.totalDegree(), 6u);
}

TEST(GraphTest, LargeStarDegrees) {
  Graph g(1001);
  for (NodeId leaf = 1; leaf <= 1000; ++leaf) g.addEdge(0, leaf);
  EXPECT_EQ(g.degree(0), 1000u);
  EXPECT_EQ(g.edgeCount(), 1000u);
  EXPECT_TRUE(g.hasEdge(0, 500));
  EXPECT_FALSE(g.hasEdge(1, 2));
}

}  // namespace
}  // namespace msd
