// Validates the paper's duplicate-account methodology against the
// generator's planted ground truth: an account flagged as a discarded
// duplicate at the merge must never appear in a post-merge edge, and the
// activity-window analysis must recover exactly the planted accounts.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/merge_analysis.h"
#include "gen/trace_generator.h"

namespace msd {
namespace {

class DuplicateDetectionTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DuplicateDetectionTest, PlantedDuplicatesNeverActAgain) {
  TraceGenerator generator(GeneratorConfig::tiny(GetParam()));
  const EventStream stream = generator.generate();
  const auto& flags = generator.duplicateFlags();
  ASSERT_FALSE(flags.empty());

  const double mergeDay = 60.0;
  for (const Event& event : stream.events()) {
    if (event.kind != EventKind::kEdgeAdd) continue;
    if (event.time < mergeDay + 1.0) continue;
    if (event.u < flags.size()) {
      EXPECT_FALSE(flags[event.u]) << event.time;
    }
    if (event.v < flags.size()) {
      EXPECT_FALSE(flags[event.v]) << event.time;
    }
  }
}

TEST_P(DuplicateDetectionTest, AnalysisRecoversPlantedFractions) {
  TraceGenerator generator(GeneratorConfig::tiny(GetParam()));
  const EventStream stream = generator.generate();
  const auto& flags = generator.duplicateFlags();
  ASSERT_FALSE(flags.empty());

  // Planted fractions per origin.
  std::size_t mainTotal = 0, mainDup = 0, secondTotal = 0, secondDup = 0;
  std::size_t index = 0;
  for (const Event& event : stream.events()) {
    if (event.kind != EventKind::kNodeJoin) continue;
    if (event.u >= flags.size()) break;  // post-merge joiners
    if (event.origin == Origin::kMain) {
      ++mainTotal;
      mainDup += flags[event.u];
    } else if (event.origin == Origin::kSecond) {
      ++secondTotal;
      secondDup += flags[event.u];
    }
    ++index;
  }
  (void)index;
  ASSERT_GT(mainTotal, 0u);
  ASSERT_GT(secondTotal, 0u);

  MergeAnalysisConfig config;
  config.mergeDay = 60.0;
  config.activityWindow = 15.0;
  config.distanceSamples = 0;
  config.distanceEvery = 1e9;
  const MergeAnalysisResult result = analyzeMerge(stream, config);

  const double plantedMain =
      static_cast<double>(mainDup) / static_cast<double>(mainTotal);
  const double plantedSecond =
      static_cast<double>(secondDup) / static_cast<double>(secondTotal);
  // The detector can only over-estimate (planted duplicates are silent by
  // construction; genuinely quiet users add on top).
  EXPECT_GE(result.day0InactiveMain, plantedMain - 1e-9);
  EXPECT_GE(result.day0InactiveSecond, plantedSecond - 1e-9);
  // ...but not by much on a 15-day window at toy scale.
  EXPECT_LT(result.day0InactiveMain, plantedMain + 0.15);
  EXPECT_LT(result.day0InactiveSecond, plantedSecond + 0.15);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DuplicateDetectionTest,
                         ::testing::Values(1, 2, 3, 7, 11));

}  // namespace
}  // namespace msd
