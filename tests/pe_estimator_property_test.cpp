// Property test for the pe(d) estimator: the O(1)-amortized lazy
// degree-count integral must agree exactly with a brute-force
// recomputation of the paper's formula
//   pe(d) = sum_t [dest degree == d] / sum_t |{v : d_{t-1}(v) = d}|
// on small random streams.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/pref_attach.h"
#include "util/rng.h"

namespace msd {
namespace {

/// Brute-force numerator/denominator of pe(d) over one window of edge
/// events [fromEdge, toEdge), destination = higher-degree endpoint.
struct BruteWindow {
  std::vector<double> numerator;
  std::vector<double> denominator;
};

BruteWindow brutePe(const EventStream& stream, std::size_t fromEdge,
                    std::size_t toEdge, std::size_t maxDegree) {
  BruteWindow window;
  window.numerator.assign(maxDegree + 1, 0.0);
  window.denominator.assign(maxDegree + 1, 0.0);

  std::vector<std::uint32_t> degree;
  std::size_t edgeIndex = 0;
  for (const Event& event : stream.events()) {
    if (event.kind == EventKind::kNodeJoin) {
      degree.push_back(0);
      continue;
    }
    if (edgeIndex >= fromEdge && edgeIndex < toEdge) {
      // Denominator: count of nodes at each degree BEFORE this event.
      std::vector<std::size_t> counts(maxDegree + 1, 0);
      for (std::uint32_t d : degree) {
        ++counts[std::min<std::size_t>(d, maxDegree)];
      }
      for (std::size_t d = 0; d <= maxDegree; ++d) {
        window.denominator[d] += static_cast<double>(counts[d]);
      }
      const std::uint32_t destinationDegree =
          std::max(degree[event.u], degree[event.v]);
      window.numerator[std::min<std::size_t>(destinationDegree, maxDegree)] +=
          1.0;
    }
    ++degree[event.u];
    ++degree[event.v];
    ++edgeIndex;
  }
  return window;
}

EventStream randomStream(std::uint64_t seed, std::size_t nodes,
                         std::size_t edges) {
  Rng rng(seed);
  EventStream stream;
  for (std::size_t i = 0; i < nodes; ++i) {
    stream.appendNodeJoin(static_cast<double>(i) * 0.01);
  }
  const double base = static_cast<double>(nodes) * 0.01;
  std::size_t added = 0;
  while (added < edges) {
    const auto u = static_cast<NodeId>(rng.uniformInt(nodes));
    const auto v = static_cast<NodeId>(rng.uniformInt(nodes));
    if (u == v) continue;
    stream.appendEdgeAdd(base + static_cast<double>(added) * 0.01, u, v);
    ++added;
  }
  return stream;
}

class PeBruteForceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PeBruteForceTest, WindowFitsMatchBruteForce) {
  const EventStream stream = randomStream(GetParam(), 60, 600);
  PrefAttachConfig config;
  config.fitEveryEdges = 200;
  config.startEdges = 200;
  config.minSamplesPerDegree = 1;
  config.maxDegree = 128;
  const PrefAttachResult result =
      analyzePreferentialAttachment(stream, config);

  // The analyzer produces fit windows at edges 200, 400, 600. Verify the
  // pe(d) points of the captured snapshot window against brute force.
  ASSERT_FALSE(result.snapshotHigher.points.empty());
  const std::size_t windowEnd = result.snapshotHigher.atEdges;
  const std::size_t windowStart = windowEnd - config.fitEveryEdges;
  const BruteWindow brute =
      brutePe(stream, windowStart, windowEnd, config.maxDegree);

  for (const PePoint& point : result.snapshotHigher.points) {
    const auto d = static_cast<std::size_t>(point.degree);
    ASSERT_GT(brute.denominator[d], 0.0) << "degree " << d;
    const double expected = brute.numerator[d] / brute.denominator[d];
    EXPECT_NEAR(point.probability, expected, 1e-12) << "degree " << d;
    EXPECT_DOUBLE_EQ(point.samples, brute.numerator[d]) << "degree " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeBruteForceTest,
                         ::testing::Values(1, 2, 3, 10, 77));

TEST(PeBruteForceTest, PurePaStreamNumeratorConcentratesHigh) {
  // Sanity on the brute-force helper itself: with a hub receiving every
  // edge, the numerator must live at the hub's degrees only.
  EventStream stream;
  for (int i = 0; i < 6; ++i) {
    stream.appendNodeJoin(0.0);
  }
  for (NodeId leaf = 1; leaf <= 5; ++leaf) {
    stream.appendEdgeAdd(1.0 + leaf, 0, leaf);
  }
  const BruteWindow brute = brutePe(stream, 0, 5, 16);
  // First edge: both endpoints degree 0 -> numerator[0]; then hub degree
  // grows 1,2,3,4.
  EXPECT_DOUBLE_EQ(brute.numerator[0], 1.0);
  EXPECT_DOUBLE_EQ(brute.numerator[1], 1.0);
  EXPECT_DOUBLE_EQ(brute.numerator[4], 1.0);
  // Denominator at degree 0: before edge 1 all 6 nodes, before edge 2
  // four nodes, ... = 6+4+3+2+1.
  EXPECT_DOUBLE_EQ(brute.denominator[0], 16.0);
}

}  // namespace
}  // namespace msd
