#include "analysis/edge_dynamics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gen/trace_generator.h"

namespace msd {
namespace {

TEST(EdgeDynamicsTest, MinAgeSharesExactOnHandStream) {
  EventStream stream;
  stream.appendNodeJoin(0.0);   // node 0
  stream.appendNodeJoin(0.0);   // node 1
  stream.appendNodeJoin(21.0);  // node 2
  stream.appendNodeJoin(50.0);  // node 3
  // Day 50: edge 0-1 (min age 50), edge 2-3 (min age 0), edge 1-2 (min 30).
  stream.appendEdgeAdd(50.0, 0, 1);
  stream.appendEdgeAdd(50.2, 2, 3);
  stream.appendEdgeAdd(50.4, 1, 2);
  const EdgeDynamics result = analyzeEdgeDynamics(stream);
  // Of 3 edges on day 50: 1 has min age <= 1, 1 has min age <= 10, and
  // 2 have min age <= 30 (0 and 30).
  EXPECT_NEAR(result.minAge1.valueAtOrBefore(50.0), 100.0 / 3.0, 1e-9);
  EXPECT_NEAR(result.minAge10.valueAtOrBefore(50.0), 100.0 / 3.0, 1e-9);
  EXPECT_NEAR(result.minAge30.valueAtOrBefore(50.0), 200.0 / 3.0, 1e-9);
}

TEST(EdgeDynamicsTest, InterArrivalGapsBucketedByAge) {
  EventStream stream;
  stream.appendNodeJoin(0.0);
  stream.appendNodeJoin(0.0);
  stream.appendNodeJoin(0.0);
  // Node 0 creates edges at t=1, 2, 3: two gaps of 1 day at ages 1-3 days.
  stream.appendEdgeAdd(1.0, 0, 1);
  stream.appendEdgeAdd(2.0, 0, 2);
  stream.appendEdgeAdd(3.0, 1, 2);
  EdgeDynamicsConfig config;
  config.ageBucketEnds = {30.0};
  const EdgeDynamics result = analyzeEdgeDynamics(stream, config);
  ASSERT_EQ(result.interArrival.size(), 1u);
  // Gaps: node0 (2-1), node1 (3-1), node2 (3-2) -> 3 gaps.
  EXPECT_EQ(result.interArrival[0].samples, 3u);
}

TEST(EdgeDynamicsTest, LifetimeFractionsSumToOne) {
  TraceGenerator generator(GeneratorConfig::tiny(1));
  EdgeDynamicsConfig config;
  config.minDegree = 5;  // tiny trace has modest degrees
  const EdgeDynamics result =
      analyzeEdgeDynamics(generator.generate(), config);
  const double total = std::accumulate(result.lifetimeFractions.begin(),
                                       result.lifetimeFractions.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(EdgeDynamicsTest, GeneratedTraceIsFrontLoaded) {
  TraceGenerator generator(GeneratorConfig::tiny(2));
  EdgeDynamicsConfig config;
  config.minDegree = 5;
  const EdgeDynamics result =
      analyzeEdgeDynamics(generator.generate(), config);
  ASSERT_EQ(result.lifetimeFractions.size(), 10u);
  // First fifth of a user's lifetime should hold more edges than the
  // middle fifth (paper Fig 2(b): activity concentrates early).
  const double early =
      result.lifetimeFractions[0] + result.lifetimeFractions[1];
  const double middle =
      result.lifetimeFractions[4] + result.lifetimeFractions[5];
  EXPECT_GT(early, middle);
}

TEST(EdgeDynamicsTest, GapPdfHasPowerLawShape) {
  TraceGenerator generator(GeneratorConfig::tiny(3));
  const EdgeDynamics result = analyzeEdgeDynamics(generator.generate());
  // At least one bucket must have enough samples for a meaningful fit;
  // its log-log slope should be negative and steeper than -1.
  bool checked = false;
  for (const InterArrivalBucket& bucket : result.interArrival) {
    if (bucket.samples < 2000) continue;
    checked = true;
    EXPECT_LT(bucket.fit.alpha, -1.0) << bucket.name;
    EXPECT_GT(bucket.fit.alpha, -4.0) << bucket.name;
  }
  EXPECT_TRUE(checked);
}

TEST(EdgeDynamicsTest, MinAgeSharesAreMonotoneInThreshold) {
  TraceGenerator generator(GeneratorConfig::tiny(4));
  const EdgeDynamics result = analyzeEdgeDynamics(generator.generate());
  ASSERT_EQ(result.minAge1.size(), result.minAge10.size());
  ASSERT_EQ(result.minAge10.size(), result.minAge30.size());
  for (std::size_t i = 0; i < result.minAge1.size(); ++i) {
    EXPECT_LE(result.minAge1.valueAt(i), result.minAge10.valueAt(i) + 1e-9);
    EXPECT_LE(result.minAge10.valueAt(i), result.minAge30.valueAt(i) + 1e-9);
    EXPECT_LE(result.minAge30.valueAt(i), 100.0 + 1e-9);
    EXPECT_GE(result.minAge1.valueAt(i), 0.0);
  }
}

TEST(EdgeDynamicsTest, RejectsUnsortedBuckets) {
  EdgeDynamicsConfig config;
  config.ageBucketEnds = {60.0, 30.0};
  EXPECT_THROW((void)analyzeEdgeDynamics(EventStream{}, config),
               std::invalid_argument);
}

TEST(EdgeDynamicsTest, EmptyStreamIsSafe) {
  const EdgeDynamics result = analyzeEdgeDynamics(EventStream{});
  EXPECT_TRUE(result.minAge1.empty());
  for (const InterArrivalBucket& bucket : result.interArrival) {
    EXPECT_EQ(bucket.samples, 0u);
  }
}

}  // namespace
}  // namespace msd
