// Determinism lock for the parallel community-evolution pipeline: the
// full analyzeCommunities replay and the selectDelta sweep must produce
// byte-identical results at 1, 2, and 8 threads (mirroring
// parallel_test.cpp's MetricsOverTime lock for the Fig 1 pipeline).
// Every comparison below is exact — EXPECT_EQ on doubles, no tolerance.

#include "analysis/community_analysis.h"

#include <gtest/gtest.h>

#include <vector>

#include "community/louvain.h"
#include "gen/trace_generator.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace msd {
namespace {

/// Restores the configured thread count when a test exits.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(threadCount()) {}
  ~ThreadCountGuard() { setThreadCount(saved_); }

 private:
  std::size_t saved_;
};

void expectSeriesIdentical(const TimeSeries& a, const TimeSeries& b) {
  ASSERT_EQ(a.size(), b.size()) << a.name();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.timeAt(i), b.timeAt(i)) << a.name() << " point " << i;
    EXPECT_EQ(a.valueAt(i), b.valueAt(i)) << a.name() << " point " << i;
  }
}

void expectRatiosIdentical(const std::vector<GroupSizeRatio>& a,
                           const std::vector<GroupSizeRatio>& b,
                           const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].day, b[i].day) << what << " entry " << i;
    EXPECT_EQ(a[i].ratio, b[i].ratio) << what << " entry " << i;
  }
}

void expectResultsIdentical(const CommunityAnalysisResult& a,
                            const CommunityAnalysisResult& b) {
  expectSeriesIdentical(a.modularity, b.modularity);
  expectSeriesIdentical(a.communityCount, b.communityCount);
  expectSeriesIdentical(a.avgSimilarity, b.avgSimilarity);
  expectSeriesIdentical(a.topCoverage, b.topCoverage);

  ASSERT_EQ(a.sizeDistributions.size(), b.sizeDistributions.size());
  for (std::size_t i = 0; i < a.sizeDistributions.size(); ++i) {
    EXPECT_EQ(a.sizeDistributions[i].day, b.sizeDistributions[i].day);
    EXPECT_EQ(a.sizeDistributions[i].sizes, b.sizeDistributions[i].sizes);
  }

  ASSERT_EQ(a.lifetimes.size(), b.lifetimes.size());
  for (std::size_t i = 0; i < a.lifetimes.size(); ++i) {
    EXPECT_EQ(a.lifetimes[i], b.lifetimes[i]) << "lifetime " << i;
  }

  expectRatiosIdentical(a.mergeRatios, b.mergeRatios, "mergeRatios");
  expectRatiosIdentical(a.splitRatios, b.splitRatios, "splitRatios");

  ASSERT_EQ(a.strongestTieOutcomes.size(), b.strongestTieOutcomes.size());
  for (std::size_t i = 0; i < a.strongestTieOutcomes.size(); ++i) {
    EXPECT_EQ(a.strongestTieOutcomes[i], b.strongestTieOutcomes[i])
        << "strongest-tie outcome " << i;
  }

  ASSERT_EQ(a.mergeSamples.size(), b.mergeSamples.size());
  for (std::size_t i = 0; i < a.mergeSamples.size(); ++i) {
    EXPECT_EQ(a.mergeSamples[i].willMerge, b.mergeSamples[i].willMerge)
        << "sample " << i;
    EXPECT_EQ(a.mergeSamples[i].age, b.mergeSamples[i].age) << "sample " << i;
    ASSERT_EQ(a.mergeSamples[i].features.size(),
              b.mergeSamples[i].features.size());
    for (std::size_t f = 0; f < a.mergeSamples[i].features.size(); ++f) {
      EXPECT_EQ(a.mergeSamples[i].features[f], b.mergeSamples[i].features[f])
          << "sample " << i << " feature " << f;
    }
  }

  EXPECT_EQ(a.finalMembership, b.finalMembership);
  EXPECT_EQ(a.finalCommunitySize, b.finalCommunitySize);
}

const EventStream& lockTrace() {
  static const EventStream stream = [] {
    TraceGenerator generator(GeneratorConfig::tiny(1));
    return generator.generate();
  }();
  return stream;
}

CommunityAnalysisConfig lockConfig() {
  CommunityAnalysisConfig config;
  config.startDay = 15.0;
  config.snapshotStep = 3.0;
  config.tracker.minCommunitySize = 5;
  config.sizeDistributionDays = {50.0, 99.0};
  config.excludeBirthLo = 59.0;
  config.excludeBirthHi = 62.0;
  return config;
}

TEST(CommunityDeterminismTest, AnalyzeCommunitiesBitIdenticalAcrossThreads) {
  ThreadCountGuard guard;
  const EventStream& stream = lockTrace();
  const CommunityAnalysisConfig config = lockConfig();

  setThreadCount(1);
  const CommunityAnalysisResult sequential =
      analyzeCommunities(stream, config);
  ASSERT_GT(sequential.modularity.size(), 10u);
  ASSERT_FALSE(sequential.finalMembership.empty());
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    setThreadCount(threads);
    const CommunityAnalysisResult parallel = analyzeCommunities(stream, config);
    SCOPED_TRACE(testing::Message() << "threads " << threads);
    expectResultsIdentical(parallel, sequential);
  }
}

TEST(CommunityDeterminismTest, SelectDeltaBitIdenticalAcrossThreads) {
  ThreadCountGuard guard;
  const EventStream& stream = lockTrace();
  CommunityAnalysisConfig config = lockConfig();
  config.snapshotStep = 6.0;  // halve the per-candidate replay cost
  config.sizeDistributionDays = {};
  const std::vector<double> candidates = {0.01, 0.04, 0.2};

  setThreadCount(1);
  const DeltaSelection sequential = selectDelta(stream, candidates, config);
  ASSERT_EQ(sequential.scores.size(), candidates.size());
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    setThreadCount(threads);
    const DeltaSelection parallel = selectDelta(stream, candidates, config);
    SCOPED_TRACE(testing::Message() << "threads " << threads);
    EXPECT_EQ(parallel.best, sequential.best);
    ASSERT_EQ(parallel.scores.size(), sequential.scores.size());
    for (std::size_t i = 0; i < parallel.scores.size(); ++i) {
      EXPECT_EQ(parallel.scores[i].delta, sequential.scores[i].delta);
      EXPECT_EQ(parallel.scores[i].meanModularity,
                sequential.scores[i].meanModularity);
      EXPECT_EQ(parallel.scores[i].meanSimilarity,
                sequential.scores[i].meanSimilarity);
      EXPECT_EQ(parallel.scores[i].balance, sequential.scores[i].balance);
    }
  }
}

TEST(CommunityDeterminismTest, LouvainHubScanIdenticalAcrossThreads) {
  ThreadCountGuard guard;
  // A graph with hubs well above the (lowered) parallel-scan threshold,
  // so the chunk-ordered neighbor accumulation and gain scan actually
  // split into multiple chunks. Identical partitions required at every
  // thread count.
  Graph g(1200);
  Rng build(93);
  for (NodeId hub = 0; hub < 3; ++hub) {
    for (NodeId v = 3; v < 1200; ++v) {
      if (build.chance(0.55)) {
        if (!g.hasEdge(hub, v)) g.addEdge(hub, v);
      }
    }
  }
  for (int i = 0; i < 6000; ++i) {
    const auto u = static_cast<NodeId>(build.uniformInt(1200));
    const auto v = static_cast<NodeId>(build.uniformInt(1200));
    if (u != v && !g.hasEdge(u, v)) g.addEdge(u, v);
  }

  LouvainConfig config;
  config.delta = 0.01;
  config.parallelScanThreshold = 64;  // force the chunked hub path

  setThreadCount(1);
  const LouvainResult sequential = louvain(g, config);
  ASSERT_GT(sequential.partition.communityCount(), 0u);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    setThreadCount(threads);
    const LouvainResult parallel = louvain(g, config);
    SCOPED_TRACE(testing::Message() << "threads " << threads);
    EXPECT_EQ(parallel.modularity, sequential.modularity);
    EXPECT_EQ(parallel.levels, sequential.levels);
    ASSERT_EQ(parallel.partition.nodeCount(), sequential.partition.nodeCount());
    for (NodeId node = 0; node < parallel.partition.nodeCount(); ++node) {
      ASSERT_EQ(parallel.partition.communityOf(node),
                sequential.partition.communityOf(node))
          << "node " << node;
    }
  }
}

}  // namespace
}  // namespace msd
