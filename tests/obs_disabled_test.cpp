// Verifies the MSD_OBS_DISABLED contract at the call-site level: this
// translation unit is compiled with MSD_OBS_DISABLED (see
// tests/CMakeLists.txt), so every instrumentation macro below must
// expand to a no-op — registering nothing, allocating nothing, and
// leaving the registry exactly as it was. The full-build variant of the
// same contract (-DMSD_OBS=OFF) is exercised by the CI recipe in
// README.md; this test locks the macro layer it relies on.

#ifndef MSD_OBS_DISABLED
#error "obs_disabled_test must be compiled with MSD_OBS_DISABLED"
#endif

#include <gtest/gtest.h>

#include <string>

#include "obs/counters.h"
#include "obs/events.h"
#include "obs/histogram_obs.h"
#include "obs/progress.h"
#include "obs/registry.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace msd {
namespace {

bool registryMentions(const std::string& needle) {
  return obs::snapshotString().find(needle) != std::string::npos;
}

TEST(ObsDisabledTest, CounterMacrosCompileToNothing) {
  MSD_COUNTER_ADD("obs_disabled.counter", 7);
  MSD_COUNTER_ADD("obs_disabled.counter", 7);
  EXPECT_EQ(obs::counterValue("obs_disabled.counter"), 0u);
  for (const auto& [name, value] : obs::counterSnapshot()) {
    EXPECT_NE(name, "obs_disabled.counter")
        << "disabled macro registered a counter";
  }
  EXPECT_FALSE(registryMentions("obs_disabled.counter"));
}

TEST(ObsDisabledTest, GaugeMacrosCompileToNothing) {
  MSD_GAUGE_SET("obs_disabled.gauge", 42);
  MSD_GAUGE_ADD("obs_disabled.gauge", 1);
  EXPECT_EQ(obs::gaugeValue("obs_disabled.gauge"), 0);
  EXPECT_FALSE(registryMentions("obs_disabled.gauge"));
}

TEST(ObsDisabledTest, TraceScopesCompileToNothing) {
  {
    MSD_TRACE_SCOPE("obs_disabled.scope");
    MSD_TRACE_SCOPE("obs_disabled.scope_inner");
  }
  for (const obs::ScopeNode* child : obs::traceRoot().children()) {
    EXPECT_NE(child->name(), "obs_disabled.scope");
    EXPECT_NE(child->name(), "obs_disabled.scope_inner");
  }
  EXPECT_FALSE(registryMentions("obs_disabled.scope"));
}

TEST(ObsDisabledTest, MacrosAreExpressionsInSingleStatementContexts) {
  // The no-op expansion must stay usable where an unbraced statement is
  // required; a macro expanding to a declaration would not compile here.
  if (true) MSD_COUNTER_ADD("obs_disabled.branch", 1);
  for (int i = 0; i < 2; ++i) MSD_GAUGE_ADD("obs_disabled.branch", 1);
  if (true) MSD_HISTOGRAM_RECORD("obs_disabled.branch_hist", 1);
  EXPECT_EQ(obs::counterValue("obs_disabled.branch"), 0u);
}

TEST(ObsDisabledTest, HistogramMacrosCompileToNothing) {
  MSD_HISTOGRAM_RECORD("obs_disabled.hist", 5);
  MSD_HISTOGRAM_RECORD_NS("obs_disabled.hist_ns", 500);
  {
    MSD_HISTOGRAM_SCOPE_NS("obs_disabled.hist_scope");
  }
  for (const auto& [name, snapshot] : obs::histogramSnapshots()) {
    EXPECT_NE(name.rfind("obs_disabled.", 0), 0u)
        << "disabled macro registered histogram " << name;
  }
  EXPECT_FALSE(registryMentions("obs_disabled.hist"));
}

TEST(ObsDisabledTest, EventRecordingEntryPointsAreInertNoOps) {
  // The header-level contract this TU compiles against: recording can
  // never be switched on, flows are the no-op id 0, and a traced scope
  // leaves the event buffers empty.
  obs::setEventRecording(true);
  EXPECT_FALSE(obs::eventRecordingEnabled());
  obs::setEventBufferCapacity(4);
  obs::setThreadLabel("obs_disabled.thread");
  EXPECT_EQ(obs::flowBegin(), 0u);
  {
    MSD_TRACE_SCOPE("obs_disabled.event_scope");
  }
  for (const obs::DrainedEvent& event : obs::drainEvents()) {
    EXPECT_NE(event.name, "obs_disabled.event_scope");
  }
  EXPECT_EQ(obs::droppedEventCount(), 0u);
  for (const std::string& label : obs::threadLabels()) {
    EXPECT_NE(label, "obs_disabled.thread");
  }
  // The drain/serialize side stays functional so tools can still write a
  // structurally valid (empty) trace document.
  const obs::Json doc = obs::traceEventsJson();
  ASSERT_NE(doc.find("traceEvents"), nullptr);
  ASSERT_NE(doc.find("otherData"), nullptr);
}

TEST(ObsDisabledTest, StatsSamplerStaysInert) {
  // In a disabled TU StatsSamplerOptions defaults live=false: the
  // sampler must never start a thread or take a sample, and the scrubbed
  // registry yields an empty Prometheus exposition.
  obs::StatsSamplerOptions options;
  EXPECT_FALSE(options.live);
  obs::StatsSampler sampler(std::move(options));
  const obs::StatsSample now = sampler.sampleNow();
  EXPECT_EQ(now.seq, 0u);
  EXPECT_EQ(now.tNanos, 0u);
  sampler.stop();
  EXPECT_EQ(sampler.sampleCount(), 0u);
  EXPECT_TRUE(sampler.samples().empty());
  EXPECT_EQ(obs::statsPrometheusText(obs::StatsSample{}), "");
}

TEST(ObsDisabledTest, StatsJsonlStillGetsAValidHeader) {
  // An obs-off `--stats-json` run must still produce a parseable (empty)
  // msd-stats-v1 artifact — the header line is written regardless of
  // `live`, so downstream tooling never chokes on a truncated file.
  const std::string path = testing::TempDir() + "/obs_disabled_stats.jsonl";
  obs::StatsSamplerOptions options;
  options.jsonlPath = path;
  {
    obs::StatsSampler sampler(std::move(options));
    sampler.stop();
  }
  const obs::StatsSeries series = obs::parseStatsFile(path);
  EXPECT_EQ(series.sampleCount, 0u);
  EXPECT_TRUE(series.series.empty());
}

TEST(ObsDisabledTest, ProgressMeterCountsButNeverRenders) {
  obs::ProgressMeterOptions options;
  EXPECT_FALSE(options.live);
  options.forceRender = true;  // live=false must win over forceRender
  obs::ProgressMeter meter(std::move(options));
  EXPECT_FALSE(meter.rendering());
  meter.add(10, 100);
  meter.add(5);
  meter.finish();
  // The byte/item tallies stay usable for callers even when inert.
  EXPECT_EQ(meter.items(), 15u);
  EXPECT_EQ(meter.bytes(), 100u);
}

}  // namespace
}  // namespace msd
