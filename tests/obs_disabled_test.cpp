// Verifies the MSD_OBS_DISABLED contract at the call-site level: this
// translation unit is compiled with MSD_OBS_DISABLED (see
// tests/CMakeLists.txt), so every instrumentation macro below must
// expand to a no-op — registering nothing, allocating nothing, and
// leaving the registry exactly as it was. The full-build variant of the
// same contract (-DMSD_OBS=OFF) is exercised by the CI recipe in
// README.md; this test locks the macro layer it relies on.

#ifndef MSD_OBS_DISABLED
#error "obs_disabled_test must be compiled with MSD_OBS_DISABLED"
#endif

#include <gtest/gtest.h>

#include <string>

#include "obs/counters.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace msd {
namespace {

bool registryMentions(const std::string& needle) {
  return obs::snapshotString().find(needle) != std::string::npos;
}

TEST(ObsDisabledTest, CounterMacrosCompileToNothing) {
  MSD_COUNTER_ADD("obs_disabled.counter", 7);
  MSD_COUNTER_ADD("obs_disabled.counter", 7);
  EXPECT_EQ(obs::counterValue("obs_disabled.counter"), 0u);
  for (const auto& [name, value] : obs::counterSnapshot()) {
    EXPECT_NE(name, "obs_disabled.counter")
        << "disabled macro registered a counter";
  }
  EXPECT_FALSE(registryMentions("obs_disabled.counter"));
}

TEST(ObsDisabledTest, GaugeMacrosCompileToNothing) {
  MSD_GAUGE_SET("obs_disabled.gauge", 42);
  MSD_GAUGE_ADD("obs_disabled.gauge", 1);
  EXPECT_EQ(obs::gaugeValue("obs_disabled.gauge"), 0);
  EXPECT_FALSE(registryMentions("obs_disabled.gauge"));
}

TEST(ObsDisabledTest, TraceScopesCompileToNothing) {
  {
    MSD_TRACE_SCOPE("obs_disabled.scope");
    MSD_TRACE_SCOPE("obs_disabled.scope_inner");
  }
  for (const obs::ScopeNode* child : obs::traceRoot().children()) {
    EXPECT_NE(child->name(), "obs_disabled.scope");
    EXPECT_NE(child->name(), "obs_disabled.scope_inner");
  }
  EXPECT_FALSE(registryMentions("obs_disabled.scope"));
}

TEST(ObsDisabledTest, MacrosAreExpressionsInSingleStatementContexts) {
  // The no-op expansion must stay usable where an unbraced statement is
  // required; a macro expanding to a declaration would not compile here.
  if (true) MSD_COUNTER_ADD("obs_disabled.branch", 1);
  for (int i = 0; i < 2; ++i) MSD_GAUGE_ADD("obs_disabled.branch", 1);
  EXPECT_EQ(obs::counterValue("obs_disabled.branch"), 0u);
}

}  // namespace
}  // namespace msd
