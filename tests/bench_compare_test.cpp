// Unit tests for the bench-report toolchain behind tools/bench_compare:
// schema validation of msd-bench-v1 documents, file/directory loading
// with path-qualified errors, and the regression comparison (regressions
// past the threshold fail, improvements of any size pass, benchmarks
// dropped from the new set are reported rather than silently passing).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/bench_compare.h"
#include "obs/json.h"

namespace msd {
namespace {

namespace fs = std::filesystem;

obs::Json validDoc(const std::string& benchmark, const std::string& name,
                   double medianMs) {
  obs::Json doc = obs::Json::object();
  doc.set("schema", obs::kBenchSchema);
  doc.set("benchmark", benchmark);
  doc.set("scale", "tiny");
  doc.set("seed", std::uint64_t{1});
  doc.set("threads", std::uint64_t{2});
  obs::Json measurement = obs::Json::object();
  measurement.set("name", name);
  measurement.set("samples", std::uint64_t{3});
  obs::Json wall = obs::Json::object();
  wall.set("median", medianMs);
  wall.set("p10", medianMs * 0.9);
  wall.set("p90", medianMs * 1.1);
  measurement.set("wall_ms", std::move(wall));
  obs::Json measurements = obs::Json::array();
  measurements.push(std::move(measurement));
  doc.set("measurements", std::move(measurements));
  obs::Json counters = obs::Json::object();
  counters.set("gen.edges", std::uint64_t{7785});
  doc.set("counters", std::move(counters));
  return doc;
}

obs::BenchRun makeRun(const std::string& benchmark, const std::string& name,
                      double medianMs) {
  return obs::parseBenchRun(validDoc(benchmark, name, medianMs));
}

/// Fresh scratch directory per test.
fs::path scratchDir(const std::string& tag) {
  const fs::path dir = fs::path(testing::TempDir()) / ("bench_cmp_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void writeFile(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out << text;
}

TEST(BenchCompareTest, ValidDocumentPassesValidationAndParses) {
  const obs::Json doc = validDoc("fig1", "total", 41.5);
  EXPECT_TRUE(obs::validateBenchJson(doc).empty());

  const obs::BenchRun run = obs::parseBenchRun(doc);
  EXPECT_EQ(run.benchmark, "fig1");
  EXPECT_EQ(run.scale, "tiny");
  EXPECT_EQ(run.seed, 1u);
  EXPECT_EQ(run.threads, 2u);
  ASSERT_EQ(run.measurements.size(), 1u);
  EXPECT_EQ(run.measurements[0].name, "total");
  EXPECT_EQ(run.measurements[0].samples, 3u);
  EXPECT_DOUBLE_EQ(run.measurements[0].medianMs, 41.5);
  ASSERT_EQ(run.counters.size(), 1u);
  EXPECT_EQ(run.counters.at("gen.edges"), 7785u);
}

TEST(BenchCompareTest, ValidationFlagsEachSchemaViolation) {
  struct Case {
    const char* label;
    void (*mutate)(obs::Json&);
    const char* expectedMention;
  };
  const Case cases[] = {
      {"wrong schema", [](obs::Json& d) { d.set("schema", "nope"); },
       "schema"},
      {"missing benchmark",
       [](obs::Json& d) { d.set("benchmark", nullptr); }, "benchmark"},
      {"string seed", [](obs::Json& d) { d.set("seed", "one"); }, "seed"},
      {"float threads", [](obs::Json& d) { d.set("threads", 2.5); },
       "threads"},
      {"empty measurements",
       [](obs::Json& d) { d.set("measurements", obs::Json::array()); },
       "measurements"},
      {"counters not an object",
       [](obs::Json& d) { d.set("counters", obs::Json::array()); },
       "counters"},
  };
  for (const Case& testCase : cases) {
    obs::Json doc = validDoc("fig1", "total", 10.0);
    testCase.mutate(doc);
    const std::vector<std::string> problems = obs::validateBenchJson(doc);
    ASSERT_FALSE(problems.empty()) << testCase.label;
    bool mentioned = false;
    for (const std::string& problem : problems) {
      if (problem.find(testCase.expectedMention) != std::string::npos) {
        mentioned = true;
      }
    }
    EXPECT_TRUE(mentioned) << testCase.label << ": problems do not mention '"
                           << testCase.expectedMention << "'";
    EXPECT_THROW(obs::parseBenchRun(doc), std::runtime_error)
        << testCase.label;
  }
}

TEST(BenchCompareTest, AbsentCountersSectionIsRejectedOnEveryLoad) {
  // Regression test: the counter snapshot is mandatory. A report missing
  // it must fail schema validation AND fail plain (non --validate)
  // loading — previously only an explicit --validate caught this shape.
  obs::Json doc = validDoc("fig1", "total", 10.0);
  doc.set("counters", nullptr);  // null is not an object
  const std::vector<std::string> nullProblems = obs::validateBenchJson(doc);
  ASSERT_FALSE(nullProblems.empty());
  EXPECT_NE(nullProblems[0].find("counters"), std::string::npos);

  // Rebuild the document without the key at all.
  obs::Json bare = obs::Json::object();
  bare.set("schema", obs::kBenchSchema);
  bare.set("benchmark", "fig1");
  bare.set("scale", "tiny");
  bare.set("seed", std::uint64_t{1});
  bare.set("threads", std::uint64_t{2});
  obs::Json measurement = obs::Json::object();
  measurement.set("name", "total");
  obs::Json wall = obs::Json::object();
  wall.set("median", 1.0);
  wall.set("p10", 1.0);
  wall.set("p90", 1.0);
  measurement.set("wall_ms", std::move(wall));
  obs::Json measurements = obs::Json::array();
  measurements.push(std::move(measurement));
  bare.set("measurements", std::move(measurements));
  ASSERT_EQ(bare.find("counters"), nullptr);

  const std::vector<std::string> problems = obs::validateBenchJson(bare);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("counters"), std::string::npos);
  EXPECT_THROW(obs::parseBenchRun(bare), std::runtime_error);

  const fs::path dir = scratchDir("no_counters");
  const fs::path file = dir / "BENCH_no_counters.json";
  writeFile(file, bare.dump(2));
  EXPECT_THROW(obs::loadBenchFile(file.string()), std::runtime_error);
  EXPECT_THROW(obs::loadBenchSet(dir.string()), std::runtime_error);

  // An empty counters object is still fine — mandatory presence, not
  // mandatory content.
  obs::Json empty = validDoc("fig1", "total", 10.0);
  empty.set("counters", obs::Json::object());
  EXPECT_TRUE(obs::validateBenchJson(empty).empty());
}

TEST(BenchCompareTest, RegressionBeyondThresholdIsDetected) {
  const std::vector<obs::BenchRun> oldRuns = {makeRun("fig1", "total", 100.0)};
  const std::vector<obs::BenchRun> newRuns = {makeRun("fig1", "total", 115.0)};
  const obs::CompareReport report =
      obs::compareBenchRuns(oldRuns, newRuns, 0.10);
  EXPECT_TRUE(report.anyRegression);
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_TRUE(report.entries[0].regression);
  EXPECT_NEAR(report.entries[0].relChange, 0.15, 1e-12);
  EXPECT_EQ(report.entries[0].benchmark, "fig1");
  EXPECT_EQ(report.entries[0].measurement, "total");
}

TEST(BenchCompareTest, ImprovementAndSubThresholdGrowthPass) {
  const std::vector<obs::BenchRun> oldRuns = {
      makeRun("fig1", "total", 100.0), makeRun("fig2", "analyze", 50.0)};
  // fig1 got 40% faster; fig2 grew 6% — both within a 10% threshold.
  const std::vector<obs::BenchRun> newRuns = {
      makeRun("fig1", "total", 60.0), makeRun("fig2", "analyze", 53.0)};
  const obs::CompareReport report =
      obs::compareBenchRuns(oldRuns, newRuns, 0.10);
  EXPECT_FALSE(report.anyRegression);
  ASSERT_EQ(report.entries.size(), 2u);
  for (const obs::CompareEntry& entry : report.entries) {
    EXPECT_FALSE(entry.regression) << entry.benchmark;
  }
  EXPECT_TRUE(report.missing.empty());
}

TEST(BenchCompareTest, ThresholdIsStrictBoundary) {
  const std::vector<obs::BenchRun> oldRuns = {makeRun("fig1", "total", 100.0)};
  // Exactly +10% is NOT a regression at threshold 0.10 (strictly greater).
  const obs::CompareReport atThreshold = obs::compareBenchRuns(
      oldRuns, {makeRun("fig1", "total", 110.0)}, 0.10);
  EXPECT_FALSE(atThreshold.anyRegression);
  const obs::CompareReport justOver = obs::compareBenchRuns(
      oldRuns, {makeRun("fig1", "total", 110.5)}, 0.10);
  EXPECT_TRUE(justOver.anyRegression);
}

TEST(BenchCompareTest, MissingAndAddedBenchmarksAreReported) {
  const std::vector<obs::BenchRun> oldRuns = {
      makeRun("fig1", "total", 10.0), makeRun("fig2", "analyze", 10.0)};
  const std::vector<obs::BenchRun> newRuns = {
      makeRun("fig2", "analyze", 10.0), makeRun("fig3", "analyze", 10.0)};
  const obs::CompareReport report =
      obs::compareBenchRuns(oldRuns, newRuns, 0.10);
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_EQ(report.missing[0], "fig1/total");
  ASSERT_EQ(report.added.size(), 1u);
  EXPECT_EQ(report.added[0], "fig3/analyze");
  EXPECT_FALSE(report.anyRegression);
}

TEST(BenchCompareTest, LoadErrorsArePathQualifiedAndClear) {
  const fs::path dir = scratchDir("errors");

  EXPECT_THROW(obs::loadBenchFile((dir / "absent.json").string()),
               std::runtime_error);

  const fs::path malformed = dir / "BENCH_broken.json";
  writeFile(malformed, "{\"schema\": \"msd-bench-v1\",");
  try {
    obs::loadBenchFile(malformed.string());
    FAIL() << "malformed JSON did not throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("BENCH_broken.json"), std::string::npos)
        << "error lacks the file path: " << what;
  }

  const fs::path invalid = dir / "BENCH_invalid.json";
  writeFile(invalid, "{\"schema\": \"other\"}");
  try {
    obs::loadBenchFile(invalid.string());
    FAIL() << "schema violation did not throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("BENCH_invalid.json"), std::string::npos) << what;
    EXPECT_NE(what.find("schema"), std::string::npos) << what;
  }
}

TEST(BenchCompareTest, DirectoryLoadingCollectsOnlyBenchReportsSorted) {
  const fs::path dir = scratchDir("collect");
  writeFile(dir / "BENCH_zz.json", validDoc("zz", "total", 1.0).dump(2));
  writeFile(dir / "BENCH_aa.json", validDoc("aa", "total", 1.0).dump(2));
  writeFile(dir / "notes.txt", "ignore me");
  writeFile(dir / "BENCH_partial.txt", "not json, wrong suffix");
  writeFile(dir / "trace.csv", "1,2\n");

  const std::vector<std::string> files =
      obs::collectBenchFiles(dir.string());
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(files[0].find("BENCH_aa.json"), std::string::npos);
  EXPECT_NE(files[1].find("BENCH_zz.json"), std::string::npos);

  const std::vector<obs::BenchRun> runs = obs::loadBenchSet(dir.string());
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].benchmark, "aa");
  EXPECT_EQ(runs[1].benchmark, "zz");
}

obs::BenchRun makeRunWithCounter(const std::string& benchmark,
                                 const std::string& counter,
                                 std::uint64_t value) {
  obs::Json doc = validDoc(benchmark, "total", 10.0);
  obs::Json counters = obs::Json::object();
  counters.set(counter, value);
  doc.set("counters", std::move(counters));
  return obs::parseBenchRun(doc);
}

TEST(BenchCompareTest, CountersAreReportOnlyWithoutAThreshold) {
  const std::vector<obs::BenchRun> oldRuns = {
      makeRunWithCounter("fig1", "gen.edges", 1000)};
  const std::vector<obs::BenchRun> newRuns = {
      makeRunWithCounter("fig1", "gen.edges", 2000)};
  obs::CompareOptions options;  // counterThreshold < 0: no gating
  const obs::CompareReport report =
      obs::compareBenchRuns(oldRuns, newRuns, options);
  ASSERT_EQ(report.counters.size(), 1u);
  EXPECT_EQ(report.counters[0].counter, "gen.edges");
  EXPECT_NEAR(report.counters[0].relChange, 1.0, 1e-12);
  EXPECT_FALSE(report.counters[0].drift);
  EXPECT_FALSE(report.anyCounterDrift);
}

TEST(BenchCompareTest, CounterDriftGatesOnItsOwnThreshold) {
  const std::vector<obs::BenchRun> oldRuns = {
      makeRunWithCounter("fig1", "gen.edges", 1000)};
  obs::CompareOptions options;
  options.counterThreshold = 0.05;

  // +4%: within the 5% counter threshold.
  obs::CompareReport report = obs::compareBenchRuns(
      oldRuns, {makeRunWithCounter("fig1", "gen.edges", 1040)}, options);
  EXPECT_FALSE(report.anyCounterDrift);

  // +6% up and -6% down both gate — counter drift is two-sided, unlike
  // wall time where improvements always pass.
  report = obs::compareBenchRuns(
      oldRuns, {makeRunWithCounter("fig1", "gen.edges", 1060)}, options);
  EXPECT_TRUE(report.anyCounterDrift);
  ASSERT_EQ(report.counters.size(), 1u);
  EXPECT_TRUE(report.counters[0].drift);
  report = obs::compareBenchRuns(
      oldRuns, {makeRunWithCounter("fig1", "gen.edges", 940)}, options);
  EXPECT_TRUE(report.anyCounterDrift);
}

TEST(BenchCompareTest, ZeroCounterThresholdDemandsExactEquality) {
  const std::vector<obs::BenchRun> oldRuns = {
      makeRunWithCounter("fig1", "gen.edges", 1000)};
  obs::CompareOptions options;
  options.counterThreshold = 0.0;
  EXPECT_FALSE(obs::compareBenchRuns(
                   oldRuns, {makeRunWithCounter("fig1", "gen.edges", 1000)},
                   options)
                   .anyCounterDrift);
  EXPECT_TRUE(obs::compareBenchRuns(
                  oldRuns, {makeRunWithCounter("fig1", "gen.edges", 1001)},
                  options)
                  .anyCounterDrift);
}

obs::Json withMem(obs::Json doc, std::uint64_t bytes) {
  obs::Json mem = obs::Json::object();
  mem.set("high_water_bytes", bytes);
  doc.set("mem", std::move(mem));
  return doc;
}

TEST(BenchCompareTest, MemSectionIsOptionalValidatedAndParsed) {
  // Absent: valid, parses to nullopt (pre-mem reports stay loadable).
  const obs::Json plain = validDoc("fig1", "total", 10.0);
  EXPECT_TRUE(obs::validateBenchJson(plain).empty());
  EXPECT_FALSE(obs::parseBenchRun(plain).memHighWaterBytes.has_value());

  // Present and well-formed: parses to the byte count.
  const obs::Json doc = withMem(validDoc("fig1", "total", 10.0), 123456789);
  EXPECT_TRUE(obs::validateBenchJson(doc).empty());
  const obs::BenchRun run = obs::parseBenchRun(doc);
  ASSERT_TRUE(run.memHighWaterBytes.has_value());
  EXPECT_EQ(*run.memHighWaterBytes, 123456789u);

  // Malformed shapes are flagged.
  obs::Json notObject = validDoc("fig1", "total", 10.0);
  notObject.set("mem", obs::Json::array());
  EXPECT_FALSE(obs::validateBenchJson(notObject).empty());
  obs::Json missingField = validDoc("fig1", "total", 10.0);
  missingField.set("mem", obs::Json::object());
  EXPECT_FALSE(obs::validateBenchJson(missingField).empty());
}

TEST(BenchCompareTest, MemDeltasAreInformationalOnly) {
  const auto oldRuns = std::vector<obs::BenchRun>{
      obs::parseBenchRun(withMem(validDoc("fig1", "total", 10.0), 1000))};
  const auto newRuns = std::vector<obs::BenchRun>{
      obs::parseBenchRun(withMem(validDoc("fig1", "total", 10.0), 1500))};
  obs::CompareOptions options;
  options.counterThreshold = 0.0;  // strictest gating everywhere else
  const obs::CompareReport report =
      obs::compareBenchRuns(oldRuns, newRuns, options);
  ASSERT_EQ(report.mem.size(), 1u);
  EXPECT_EQ(report.mem[0].benchmark, "fig1");
  EXPECT_EQ(report.mem[0].oldBytes, 1000u);
  EXPECT_EQ(report.mem[0].newBytes, 1500u);
  EXPECT_NEAR(report.mem[0].relChange, 0.5, 1e-12);
  // A +50% RSS change never gates: mem is trend data, not a correctness
  // signal.
  EXPECT_FALSE(report.anyRegression);
  EXPECT_FALSE(report.anyCounterDrift);

  // One-sided mem (old report predates the section): no entry, no gate.
  const auto legacyOld =
      std::vector<obs::BenchRun>{makeRun("fig1", "total", 10.0)};
  EXPECT_TRUE(
      obs::compareBenchRuns(legacyOld, newRuns, options).mem.empty());
}

obs::Json withMemSamples(obs::Json doc, std::uint64_t bytes,
                         std::uint64_t streaming, std::uint64_t inMemory) {
  obs::Json samples = obs::Json::object();
  samples.set("n100000.streaming_series", streaming);
  samples.set("n100000.inmemory_series", inMemory);
  obs::Json mem = obs::Json::object();
  mem.set("high_water_bytes", bytes);
  mem.set("samples", std::move(samples));
  doc.set("mem", std::move(mem));
  return doc;
}

TEST(BenchCompareTest, MemSamplesAreValidatedParsedAndCompared) {
  // Well-formed labeled samples parse into the memSamples map.
  const obs::Json doc =
      withMemSamples(validDoc("scale_sweep", "total", 10.0), 2000, 700, 1800);
  EXPECT_TRUE(obs::validateBenchJson(doc).empty());
  const obs::BenchRun run = obs::parseBenchRun(doc);
  ASSERT_EQ(run.memSamples.size(), 2u);
  EXPECT_EQ(run.memSamples.at("n100000.streaming_series"), 700u);
  EXPECT_EQ(run.memSamples.at("n100000.inmemory_series"), 1800u);

  // Malformed samples are flagged: non-object, non-integer entry.
  obs::Json notObject = validDoc("scale_sweep", "total", 10.0);
  {
    obs::Json mem = obs::Json::object();
    mem.set("high_water_bytes", std::uint64_t{1});
    mem.set("samples", obs::Json::array());
    notObject.set("mem", std::move(mem));
  }
  EXPECT_FALSE(obs::validateBenchJson(notObject).empty());
  obs::Json badEntry = validDoc("scale_sweep", "total", 10.0);
  {
    obs::Json samples = obs::Json::object();
    samples.set("label", "not-a-number");
    obs::Json mem = obs::Json::object();
    mem.set("high_water_bytes", std::uint64_t{1});
    mem.set("samples", std::move(samples));
    badEntry.set("mem", std::move(mem));
  }
  EXPECT_FALSE(obs::validateBenchJson(badEntry).empty());

  // Comparison yields one informational entry per shared label, keyed
  // "benchmark/label", plus the final high-water entry; labels on one
  // side only are dropped silently.
  const auto oldRuns = std::vector<obs::BenchRun>{obs::parseBenchRun(
      withMemSamples(validDoc("scale_sweep", "total", 10.0), 2000, 700,
                     1800))};
  obs::Json newDoc =
      withMemSamples(validDoc("scale_sweep", "total", 10.0), 2400, 1400, 1900);
  const auto newRuns =
      std::vector<obs::BenchRun>{obs::parseBenchRun(newDoc)};
  const obs::CompareReport report =
      obs::compareBenchRuns(oldRuns, newRuns, obs::CompareOptions{});
  ASSERT_EQ(report.mem.size(), 3u);
  EXPECT_EQ(report.mem[0].benchmark, "scale_sweep");
  bool sawStreaming = false;
  for (const obs::MemEntry& entry : report.mem) {
    if (entry.benchmark == "scale_sweep/n100000.streaming_series") {
      sawStreaming = true;
      EXPECT_EQ(entry.oldBytes, 700u);
      EXPECT_EQ(entry.newBytes, 1400u);
      EXPECT_NEAR(entry.relChange, 1.0, 1e-12);
    }
  }
  EXPECT_TRUE(sawStreaming);
  EXPECT_FALSE(report.anyRegression);
  EXPECT_FALSE(report.anyCounterDrift);
}

TEST(BenchCompareTest, IgnoredPrefixesAndMissingCounters) {
  obs::Json oldDoc = validDoc("fig1", "total", 10.0);
  obs::Json oldCounters = obs::Json::object();
  oldCounters.set("gen.edges", std::uint64_t{100});
  oldCounters.set("pool.wakeups", std::uint64_t{17});
  oldCounters.set("gen.gone", std::uint64_t{5});
  oldDoc.set("counters", std::move(oldCounters));

  obs::Json newDoc = validDoc("fig1", "total", 10.0);
  obs::Json newCounters = obs::Json::object();
  newCounters.set("gen.edges", std::uint64_t{100});
  newCounters.set("pool.wakeups", std::uint64_t{99});  // ignored prefix
  newCounters.set("gen.fresh", std::uint64_t{1});      // added
  newDoc.set("counters", std::move(newCounters));

  obs::CompareOptions options;
  options.counterThreshold = 0.0;
  options.counterIgnorePrefixes = {"pool."};
  const obs::CompareReport report = obs::compareBenchRuns(
      {obs::parseBenchRun(oldDoc)}, {obs::parseBenchRun(newDoc)}, options);

  // pool.wakeups diverged wildly but is excluded wholesale.
  for (const obs::CounterDriftEntry& entry : report.counters) {
    EXPECT_NE(entry.counter, "pool.wakeups");
  }
  // A disappeared or appeared counter is drift under a gate: silently
  // losing instrumentation must not read as a pass.
  ASSERT_EQ(report.counterMissing.size(), 1u);
  EXPECT_EQ(report.counterMissing[0], "fig1/gen.gone");
  ASSERT_EQ(report.counterAdded.size(), 1u);
  EXPECT_EQ(report.counterAdded[0], "fig1/gen.fresh");
  EXPECT_TRUE(report.anyCounterDrift);
}

TEST(BenchCompareTest, ManifestsAreComparedWhenPresent) {
  obs::RunManifest manifest;
  manifest.buildType = "Release";
  manifest.gitDescribe = "aaa";
  manifest.seed = 1;
  manifest.threads = 2;

  obs::Json oldDoc = validDoc("fig1", "total", 10.0);
  oldDoc.set("run", obs::manifestJson(manifest));
  obs::Json newDoc = validDoc("fig1", "total", 10.0);
  obs::RunManifest changed = manifest;
  changed.threads = 8;
  changed.gitDescribe = "bbb";  // never a mismatch
  newDoc.set("run", obs::manifestJson(changed));

  const obs::CompareReport report =
      obs::compareBenchRuns({obs::parseBenchRun(oldDoc)},
                            {obs::parseBenchRun(newDoc)}, 0.10);
  ASSERT_EQ(report.manifestMismatches.size(), 1u);
  EXPECT_NE(report.manifestMismatches[0].find("threads"), std::string::npos);
  EXPECT_NE(report.manifestMismatches[0].find("fig1"), std::string::npos);

  // Manifest on one side only is itself a mismatch; absent on both sides
  // compares as a legacy document.
  const obs::CompareReport oneSided = obs::compareBenchRuns(
      {obs::parseBenchRun(oldDoc)}, {makeRun("fig1", "total", 10.0)}, 0.10);
  ASSERT_EQ(oneSided.manifestMismatches.size(), 1u);
  const obs::CompareReport legacy =
      obs::compareBenchRuns({makeRun("fig1", "total", 10.0)},
                            {makeRun("fig1", "total", 10.0)}, 0.10);
  EXPECT_TRUE(legacy.manifestMismatches.empty());
}

TEST(BenchCompareTest, ManifestRoundTripsThroughBenchFiles) {
  obs::RunManifest manifest;
  manifest.buildType = "Release";
  manifest.buildFlags = {"contracts"};
  manifest.gitDescribe = "abc";
  manifest.seed = 9;
  manifest.threads = 4;
  manifest.args = {"--scale=tiny"};
  obs::Json doc = validDoc("fig1", "total", 10.0);
  doc.set("run", obs::manifestJson(manifest));

  const fs::path dir = scratchDir("manifest_roundtrip");
  const fs::path file = dir / "BENCH_fig1.json";
  writeFile(file, doc.dump(2));
  const obs::BenchRun run = obs::loadBenchFile(file.string());
  ASSERT_TRUE(run.manifest.has_value());
  EXPECT_EQ(run.manifest->threads, 4);
  EXPECT_EQ(run.manifest->buildFlags,
            std::vector<std::string>{"contracts"});
  EXPECT_TRUE(obs::manifestMismatches(*run.manifest, manifest).empty());

  // A malformed manifest is a schema violation like any other.
  doc.set("run", "not an object");
  writeFile(file, doc.dump(2));
  EXPECT_THROW(obs::loadBenchFile(file.string()), std::runtime_error);
}

TEST(BenchCompareTest, EmptyDirectoryIsAnError) {
  const fs::path dir = scratchDir("empty");
  EXPECT_THROW(obs::loadBenchSet(dir.string()), std::runtime_error);
}

TEST(BenchCompareTest, SingleFilePathLoadsDirectly) {
  const fs::path dir = scratchDir("single");
  const fs::path file = dir / "BENCH_one.json";
  writeFile(file, validDoc("one", "total", 2.5).dump(2));
  const std::vector<obs::BenchRun> runs = obs::loadBenchSet(file.string());
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].benchmark, "one");
}

}  // namespace
}  // namespace msd
