#include "graph/csr.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "gen/trace_generator.h"
#include "graph/dynamic_graph.h"
#include "metrics/paths.h"
#include "util/rng.h"

namespace msd {
namespace {

TEST(CsrGraphTest, EmptyGraph) {
  const CsrGraph csr = CsrGraph::fromGraph(Graph{});
  EXPECT_EQ(csr.nodeCount(), 0u);
  EXPECT_EQ(csr.edgeCount(), 0u);
}

TEST(CsrGraphTest, PreservesAdjacency) {
  Graph g(5);
  g.addEdge(0, 1);
  g.addEdge(0, 3);
  g.addEdge(2, 4);
  const CsrGraph csr = CsrGraph::fromGraph(g);
  EXPECT_EQ(csr.nodeCount(), 5u);
  EXPECT_EQ(csr.edgeCount(), 3u);
  for (NodeId node = 0; node < 5; ++node) {
    ASSERT_EQ(csr.degree(node), g.degree(node));
    const auto expected = g.neighbors(node);
    const auto actual = csr.neighbors(node);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i]);
    }
  }
}

TEST(CsrGraphTest, BoundsChecked) {
  const CsrGraph csr = CsrGraph::fromGraph(Graph(3));
  EXPECT_THROW((void)csr.neighbors(3), std::invalid_argument);
  EXPECT_THROW((void)csr.degree(5), std::invalid_argument);
  EXPECT_THROW((void)bfsDistances(csr, 3), std::invalid_argument);
}

class CsrEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrEquivalenceTest, BfsMatchesAdjacencyListBfs) {
  Rng rng(GetParam());
  Graph g(400);
  for (int i = 0; i < 1600; ++i) {
    const auto u = static_cast<NodeId>(rng.uniformInt(400));
    const auto v = static_cast<NodeId>(rng.uniformInt(400));
    if (u != v) g.addEdge(u, v);
  }
  const CsrGraph csr = CsrGraph::fromGraph(g);
  for (int probe = 0; probe < 10; ++probe) {
    const auto source = static_cast<NodeId>(rng.uniformInt(400));
    const auto fromList = bfsDistances(g, source);
    const auto fromCsr = bfsDistances(csr, source);
    ASSERT_EQ(fromList.size(), fromCsr.size());
    for (std::size_t i = 0; i < fromList.size(); ++i) {
      EXPECT_EQ(fromList[i], fromCsr[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrEquivalenceTest,
                         ::testing::Values(1, 2, 3));

TEST(CsrGraphTest, SortedFromGraphSortsEveryRow) {
  Graph g(6);
  g.addEdge(3, 5);
  g.addEdge(3, 1);
  g.addEdge(3, 4);
  g.addEdge(3, 0);
  g.addEdge(0, 5);
  const CsrGraph unsorted = CsrGraph::fromGraph(g);
  EXPECT_FALSE(unsorted.neighborsSorted());
  const CsrGraph csr = CsrGraph::sortedFromGraph(g);
  EXPECT_TRUE(csr.neighborsSorted());
  EXPECT_EQ(csr.edgeCount(), g.edgeCount());
  for (NodeId node = 0; node < 6; ++node) {
    const auto hood = csr.neighbors(node);
    EXPECT_TRUE(std::is_sorted(hood.begin(), hood.end()));
    ASSERT_EQ(hood.size(), g.degree(node));
    const std::set<NodeId> expected(g.neighbors(node).begin(),
                                    g.neighbors(node).end());
    EXPECT_EQ(std::set<NodeId>(hood.begin(), hood.end()), expected);
  }
}

TEST(CsrGraphTest, HasEdgeMatchesGraphOnBothOrders) {
  Rng rng(9);
  Graph g(100);
  for (int i = 0; i < 300; ++i) {
    const auto u = static_cast<NodeId>(rng.uniformInt(100));
    const auto v = static_cast<NodeId>(rng.uniformInt(100));
    if (u != v) g.addEdge(u, v);
  }
  const CsrGraph unsorted = CsrGraph::fromGraph(g);
  const CsrGraph sorted = CsrGraph::sortedFromGraph(g);
  for (NodeId u = 0; u < 100; ++u) {
    for (NodeId v = 0; v < 100; ++v) {
      EXPECT_EQ(unsorted.hasEdge(u, v), g.hasEdge(u, v));
      EXPECT_EQ(sorted.hasEdge(u, v), g.hasEdge(u, v));
    }
  }
  EXPECT_THROW((void)sorted.hasEdge(0, 200), std::invalid_argument);
}

TEST(CsrGraphTest, FreezesGeneratedTrace) {
  TraceGenerator generator(GeneratorConfig::tiny(4));
  const EventStream trace = generator.generate();
  Replayer replayer(trace);
  replayer.advanceToEnd();
  const Graph& g = replayer.graph().graph();
  const CsrGraph csr = CsrGraph::fromGraph(g);
  EXPECT_EQ(csr.nodeCount(), g.nodeCount());
  EXPECT_EQ(csr.edgeCount(), g.edgeCount());
}

}  // namespace
}  // namespace msd
