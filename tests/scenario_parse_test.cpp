// Negative and fuzz coverage of the scenario preset/override parsing
// surface: unknown presets, malformed override specs, out-of-range
// values, and the special holiday/homophily forms must all produce
// context-qualified std::invalid_argument errors (never a crash or a
// silent clamp), and the `msdyn scenario` CLI must turn every one of
// them into exit code 2, distinct from runtime failures (1).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "gen/config.h"
#include "scenario/scenario.h"
#include "util/rng.h"

namespace msd {
namespace {

/// Applies one key=value spec to a fresh tiny config, returning the
/// error message ("" on success).
std::string applyError(const std::string& key, const std::string& value) {
  GeneratorConfig config = GeneratorConfig::tiny(1);
  try {
    scenario::applyOverride(config, {key, value});
    return "";
  } catch (const std::invalid_argument& error) {
    return error.what();
  }
}

TEST(ScenarioParseTest, ParseOverrideSplitsOnFirstEquals) {
  const scenario::Override override_ =
      scenario::parseOverride("holiday.addFraction=0.3:0.05:8");
  EXPECT_EQ(override_.key, "holiday.addFraction");
  EXPECT_EQ(override_.value, "0.3:0.05:8");
  // A value containing '=' keeps everything after the first one.
  EXPECT_EQ(scenario::parseOverride("a=b=c").value, "b=c");
}

TEST(ScenarioParseTest, MalformedSpecsThrowWithTheSpecQuoted) {
  for (const char* spec : {"noequals", "=value", ""}) {
    try {
      scenario::parseOverride(spec);
      FAIL() << "accepted '" << spec << "'";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("malformed override"),
                std::string::npos)
          << spec;
    }
  }
}

TEST(ScenarioParseTest, UnknownKeyNamesTheKeyAndContext) {
  const std::string message = applyError("arrival.typo", "3");
  EXPECT_NE(message.find("scenario override 'arrival.typo=3'"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("unknown key"), std::string::npos) << message;
}

TEST(ScenarioParseTest, MalformedNumbersAreRejectedWithContext) {
  for (const char* value : {"", "abc", "1.2.3", "1e", "nan", "inf", "3x"}) {
    const std::string message = applyError("arrival.base", value);
    EXPECT_NE(message.find("scenario override 'arrival.base="),
              std::string::npos)
        << "value: " << value << " -> " << message;
    EXPECT_NE(message.find("malformed number"), std::string::npos)
        << "value: " << value << " -> " << message;
  }
}

TEST(ScenarioParseTest, OutOfRangeValuesReportTheRange) {
  const std::string message = applyError("churn.dailyFraction", "0.9");
  EXPECT_NE(message.find("out of range"), std::string::npos) << message;
  EXPECT_NE(message.find("[0, 0.5]"), std::string::npos) << message;
  EXPECT_NE(applyError("arrival.base", "-1"), "");
  EXPECT_NE(applyError("spam.arrivalMultiple", "101"), "");
  EXPECT_NE(applyError("attachment.triadicProb", "0.96"), "");
}

TEST(ScenarioParseTest, SpecialFormsValidateTheirShape) {
  // merge.enabled is strictly boolean, repeatCount strictly integral.
  EXPECT_EQ(applyError("merge.enabled", "0"), "");
  EXPECT_NE(applyError("merge.enabled", "2"), "");
  EXPECT_EQ(applyError("merge.repeatCount", "3"), "");
  EXPECT_NE(applyError("merge.repeatCount", "2.5"), "");
  EXPECT_NE(applyError("merge.repeatCount", "17"), "");
  // holiday.clear takes exactly "1".
  EXPECT_EQ(applyError("holiday.clear", "1"), "");
  EXPECT_NE(applyError("holiday.clear", "yes"), "");
  // holiday.addFraction wants start:length:factor, each in range.
  EXPECT_EQ(applyError("holiday.addFraction", "0.3:0.05:8"), "");
  EXPECT_NE(applyError("holiday.addFraction", "0.3:0.05"), "");
  EXPECT_NE(applyError("holiday.addFraction", "0.3:0.05:8:9"), "");
  EXPECT_NE(applyError("holiday.addFraction", "0.3::8"), "");
  EXPECT_NE(applyError("holiday.addFraction", "2:0.05:8"), "");
  EXPECT_NE(applyError("holiday.addFraction", "0.3:0.05:99"), "");
  EXPECT_EQ(applyError("homophily.strength", "1.8"), "");
  EXPECT_NE(applyError("homophily.strength", "5"), "");
}

TEST(ScenarioParseTest, AppliedOverridesLandInTheConfig) {
  GeneratorConfig config = GeneratorConfig::tiny(1);
  scenario::applyOverride(config, {"arrival.base", "7.5"});
  EXPECT_EQ(config.arrival.base, 7.5);
  scenario::applyOverride(config, {"merge.enabled", "0"});
  EXPECT_FALSE(config.merge.enabled);
  const std::size_t before = config.holidays.size();
  scenario::applyOverride(config, {"holiday.addFraction", "0.5:0.1:3"});
  ASSERT_EQ(config.holidays.size(), before + 1);
  EXPECT_EQ(config.holidays.back().startDay, 0.5 * config.days);
  EXPECT_EQ(config.holidays.back().factor, 3.0);
  scenario::applyOverride(config, {"holiday.clear", "1"});
  EXPECT_TRUE(config.holidays.empty());
}

TEST(ScenarioParseTest, UnknownPresetListsTheKnownNames) {
  EXPECT_EQ(scenario::findPreset("ghost"), nullptr);
  try {
    scenario::presetOrThrow("ghost");
    FAIL();
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("unknown scenario 'ghost'"), std::string::npos);
    EXPECT_NE(message.find("renren-baseline"), std::string::npos);
  }
  EXPECT_THROW(scenario::parseScale("huge"), std::invalid_argument);
}

// Fuzz: random override strings must either apply cleanly or throw
// std::invalid_argument — never crash, never leave non-finite values in
// the config. Deterministic seeds.
TEST(ScenarioParseFuzzTest, RandomSpecsNeverCrash) {
  const char charset[] = "abcdefgh.=:-+0123456789eE ";
  Rng rng(2024);
  for (int i = 0; i < 4000; ++i) {
    std::string spec;
    const std::size_t length = 1 + rng.uniformInt(24);
    for (std::size_t j = 0; j < length; ++j) {
      spec += charset[rng.uniformInt(sizeof charset - 1)];
    }
    GeneratorConfig config = GeneratorConfig::tiny(1);
    try {
      scenario::applyOverride(config, scenario::parseOverride(spec));
    } catch (const std::invalid_argument&) {
      continue;  // the expected common outcome
    }
    EXPECT_TRUE(std::isfinite(config.arrival.base));
    EXPECT_TRUE(std::isfinite(config.days));
  }
}

// Fuzz with real keys and mutated values: the whitelist must hold the
// range contract for every key it accepts.
TEST(ScenarioParseFuzzTest, MutatedValuesOnRealKeysHoldTheContract) {
  std::vector<std::string> keys;
  for (const scenario::ScenarioPreset& preset : scenario::allPresets()) {
    for (const scenario::Override& override_ : preset.overrides) {
      keys.push_back(override_.key);
    }
  }
  ASSERT_FALSE(keys.empty());
  const char digits[] = "0123456789.-e";
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::string& key = keys[rng.uniformInt(keys.size())];
    std::string value;
    const std::size_t length = 1 + rng.uniformInt(8);
    for (std::size_t j = 0; j < length; ++j) {
      value += digits[rng.uniformInt(sizeof digits - 1)];
    }
    GeneratorConfig config = GeneratorConfig::tiny(1);
    try {
      scenario::applyOverride(config, {key, value});
    } catch (const std::invalid_argument&) {
      continue;
    }
    EXPECT_TRUE(std::isfinite(config.arrival.base)) << key << "=" << value;
  }
}

#ifdef MSDYN_BINARY

int runCli(const std::string& commandTail) {
  const std::string command =
      std::string(MSDYN_BINARY) + " " + commandTail + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  return WEXITSTATUS(status);
}

TEST(ScenarioCliTest, ParseErrorsExitTwo) {
  EXPECT_EQ(runCli("scenario run no-such-preset"), 2);
  EXPECT_EQ(runCli("scenario run renren-baseline --scale=huge"), 2);
  EXPECT_EQ(runCli("scenario run renren-baseline --set=bad"), 2);
  EXPECT_EQ(runCli("scenario run renren-baseline --set=arrival.typo=3"), 2);
  EXPECT_EQ(runCli("scenario run renren-baseline "
                   "--set=spam.arrivalMultiple=999"),
            2);
  EXPECT_EQ(runCli("scenario describe no-such-preset"), 2);
  EXPECT_EQ(runCli("scenario frobnicate"), 2);
  EXPECT_EQ(runCli("scenario"), 2);
}

TEST(ScenarioCliTest, ListExitsZero) {
  EXPECT_EQ(runCli("scenario list"), 0);
  EXPECT_EQ(runCli("scenario describe spam-burst"), 0);
}

#endif  // MSDYN_BINARY

}  // namespace
}  // namespace msd
