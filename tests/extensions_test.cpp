// Tests for the extension modules: temporal edge-list interop, the
// effective-diameter time series, the paper's activity-window derivation,
// and a scripted multi-snapshot tracker lifecycle chain.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "analysis/diameter_over_time.h"
#include "analysis/merge_analysis.h"
#include "community/tracker.h"
#include "gen/trace_generator.h"
#include "io/event_io.h"

namespace msd {
namespace {

// --- Temporal edge list -------------------------------------------------

TEST(TemporalEdgeListTest, RoundTripPreservesEdges) {
  TraceGenerator generator(GeneratorConfig::tiny(1));
  const EventStream original = generator.generate();
  std::stringstream buffer;
  event_io::saveTemporalEdgeList(original, buffer);
  const EventStream loaded = event_io::loadTemporalEdgeList(buffer);
  EXPECT_EQ(loaded.edgeCount(), original.edgeCount());
  // Joins are synthesized only for nodes with edges.
  EXPECT_LE(loaded.nodeCount(), original.nodeCount());
  EXPECT_NO_THROW(loaded.validate());
}

TEST(TemporalEdgeListTest, SparseIdsAreCompacted) {
  std::stringstream input("# comment\n1000 2000 5.0\n2000 30 1.0\n");
  const EventStream stream = event_io::loadTemporalEdgeList(input);
  EXPECT_EQ(stream.nodeCount(), 3u);
  EXPECT_EQ(stream.edgeCount(), 2u);
  // Edges were re-sorted chronologically.
  double last = -1.0;
  for (const Event& e : stream.events()) {
    EXPECT_GE(e.time, last);
    last = e.time;
  }
}

TEST(TemporalEdgeListTest, JoinSynthesizedAtFirstEdge) {
  std::stringstream input("7 8 3.5\n7 9 6.0\n");
  const EventStream stream = event_io::loadTemporalEdgeList(input);
  // Node "7" appears first at t=3.5.
  EXPECT_DOUBLE_EQ(stream.at(0).time, 3.5);
  EXPECT_EQ(stream.at(0).kind, EventKind::kNodeJoin);
}

TEST(TemporalEdgeListTest, RejectsMalformedAndSelfLoops) {
  std::stringstream bad("1 x 2\n");
  EXPECT_THROW((void)event_io::loadTemporalEdgeList(bad), std::runtime_error);
  std::stringstream loop("3 3 1.0\n");
  EXPECT_THROW((void)event_io::loadTemporalEdgeList(loop),
               std::runtime_error);
}

// --- Diameter over time -------------------------------------------------

TEST(DiameterOverTimeTest, ProducesSeriesOnGeneratedTrace) {
  TraceGenerator generator(GeneratorConfig::tiny(2));
  const EventStream stream = generator.generate();
  DiameterOverTimeConfig config;
  config.firstDay = 20.0;
  config.every = 20.0;
  const DiameterOverTime result = analyzeDiameterOverTime(stream, config);
  ASSERT_GE(result.effectiveDiameter.size(), 3u);
  for (std::size_t i = 0; i < result.effectiveDiameter.size(); ++i) {
    EXPECT_GT(result.effectiveDiameter.valueAt(i), 0.5);
    EXPECT_LT(result.effectiveDiameter.valueAt(i), 30.0);
  }
  // ANF mean distance should roughly track the BFS-sampled path length
  // scale of the same trace (2.5-4.5 at toy scale).
  EXPECT_GT(result.meanDistance.lastValue(), 1.5);
  EXPECT_LT(result.meanDistance.lastValue(), 6.0);
}

TEST(DiameterOverTimeTest, EmptyStreamIsSafe) {
  const DiameterOverTime result = analyzeDiameterOverTime(EventStream{});
  EXPECT_TRUE(result.effectiveDiameter.empty());
}

TEST(DiameterOverTimeTest, RejectsBadConfig) {
  DiameterOverTimeConfig config;
  config.every = 0.0;
  EXPECT_THROW((void)analyzeDiameterOverTime(EventStream{}, config),
               std::invalid_argument);
}

// --- Activity-window derivation ------------------------------------------

TEST(ActivityWindowTest, ExactOnHandStream) {
  EventStream stream;
  for (int i = 0; i < 4; ++i) stream.appendNodeJoin(0.0);
  // Node 0 and 1: edges at 0, 10 -> mean gap 10. Node 2 and 3: edges at
  // 0, 40 -> mean gap 40.
  stream.appendEdgeAdd(0.0, 0, 1);
  stream.appendEdgeAdd(0.0, 2, 3);
  stream.appendEdgeAdd(10.0, 0, 1);  // duplicate edge still an event
  stream.appendEdgeAdd(40.0, 2, 3);
  EXPECT_DOUBLE_EQ(deriveActivityWindow(stream, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(deriveActivityWindow(stream, 0.5), 25.0);
}

TEST(ActivityWindowTest, NoQualifyingUsersReturnsZero) {
  EventStream stream;
  stream.appendNodeJoin(0.0);
  stream.appendNodeJoin(0.0);
  stream.appendEdgeAdd(1.0, 0, 1);  // single edge per user
  EXPECT_DOUBLE_EQ(deriveActivityWindow(stream), 0.0);
}

TEST(ActivityWindowTest, RejectsBadQuantile) {
  EXPECT_THROW((void)deriveActivityWindow(EventStream{}, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)deriveActivityWindow(EventStream{}, 1.5),
               std::invalid_argument);
}

TEST(ActivityWindowTest, GeneratedTraceGivesFiniteWindow) {
  TraceGenerator generator(GeneratorConfig::tiny(3));
  const EventStream stream = generator.generate();
  const double window = deriveActivityWindow(stream, 0.99);
  EXPECT_GT(window, 1.0);
  EXPECT_LT(window, stream.lastTime());
}

// --- Tracker lifecycle chain ---------------------------------------------

/// Scripted five-snapshot story on 40 fixed nodes:
///   s0: A={0..9}, B={10..19}, C={20..29}
///   s1: same (continue x3)
///   s2: A absorbs B (merge death of B)
///   s3: C splits into C1={20..24}, C2={25..29} (birth of one child)
///   s4: everything persists
TEST(TrackerChainTest, FullLifecycleBookkeeping) {
  Graph g(40);
  // Cliques for A, B and C's two future halves, loosely connected.
  auto clique = [&](NodeId lo, NodeId hi) {
    for (NodeId i = lo; i < hi; ++i) {
      for (NodeId j = i + 1; j <= hi; ++j) g.addEdge(i, j);
    }
  };
  clique(0, 9);
  clique(10, 19);
  clique(20, 24);
  clique(25, 29);
  g.addEdge(0, 10);   // A-B tie
  g.addEdge(20, 25);  // C1-C2 tie

  auto labels = [&](std::vector<std::pair<std::pair<int, int>, CommunityId>>
                        ranges) {
    std::vector<CommunityId> out(40, kNoCommunity);
    for (const auto& [range, label] : ranges) {
      for (int i = range.first; i <= range.second; ++i) {
        out[static_cast<std::size_t>(i)] = label;
      }
    }
    return Partition(std::move(out));
  };

  CommunityTracker tracker({.minCommunitySize = 4});
  const Partition three =
      labels({{{0, 9}, 0}, {{10, 19}, 1}, {{20, 29}, 2}});
  tracker.addSnapshot(0.0, g, three);
  tracker.addSnapshot(3.0, g, three);
  tracker.addSnapshot(6.0, g,
                      labels({{{0, 19}, 0}, {{20, 29}, 2}}));  // A absorbs B
  tracker.addSnapshot(9.0, g,
                      labels({{{0, 19}, 0}, {{20, 24}, 2}, {{25, 29}, 3}}));
  tracker.addSnapshot(12.0, g,
                      labels({{{0, 19}, 0}, {{20, 24}, 2}, {{25, 29}, 3}}));

  // Tracked: A, B, C at day 0; C2 born at day 9 -> 4 identities.
  ASSERT_EQ(tracker.communities().size(), 4u);
  const TrackedCommunity& a = tracker.communities()[0];
  const TrackedCommunity& b = tracker.communities()[1];
  const TrackedCommunity& c = tracker.communities()[2];
  const TrackedCommunity& c2 = tracker.communities()[3];

  EXPECT_LT(a.deathDay, 0.0);  // alive
  EXPECT_EQ(a.history.size(), 5u);
  EXPECT_EQ(a.history.back().size, 20u);

  EXPECT_DOUBLE_EQ(b.deathDay, 6.0);
  EXPECT_EQ(b.endKind, LifecycleKind::kMergeDeath);
  EXPECT_DOUBLE_EQ(b.lifetime(), 6.0);

  EXPECT_LT(c.deathDay, 0.0);
  EXPECT_EQ(c.history.size(), 5u);
  EXPECT_EQ(c.history.back().size, 5u);  // kept the larger-overlap half

  EXPECT_DOUBLE_EQ(c2.birthDay, 9.0);
  EXPECT_EQ(c2.history.size(), 2u);

  // Events: one merge death (B), one split (C), at the right days.
  std::size_t merges = 0, splits = 0;
  for (const LifecycleEvent& event : tracker.events()) {
    if (event.kind == LifecycleKind::kMergeDeath) {
      ++merges;
      EXPECT_DOUBLE_EQ(event.day, 6.0);
      EXPECT_TRUE(event.strongestTie);  // A was B's only neighbor
    }
    if (event.kind == LifecycleKind::kSplit) {
      ++splits;
      EXPECT_DOUBLE_EQ(event.day, 9.0);
    }
  }
  EXPECT_EQ(merges, 1u);
  EXPECT_EQ(splits, 1u);
  ASSERT_EQ(tracker.mergeSizeRatios().size(), 1u);
  EXPECT_NEAR(tracker.mergeSizeRatios()[0].ratio, 1.0, 1e-12);  // 10 vs 10
  ASSERT_EQ(tracker.splitSizeRatios().size(), 1u);
  EXPECT_NEAR(tracker.splitSizeRatios()[0].ratio, 1.0, 1e-12);  // 5 vs 5
}

}  // namespace
}  // namespace msd
