// End-to-end determinism of the out-of-core pipeline: replaying a trace
// from an msd-bin-v1 file must produce bit-identical analysis results to
// replaying the same trace from memory, at 1, 2, and 8 threads — the
// binary log is a storage format, never a source of drift. Also locks
// the generator's streaming emission (generateTo) to its one-shot
// in-memory path (generate) byte-for-byte. Runs under the tsan preset
// (thread-count sweep over the parallel metrics engine).

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/metrics_over_time.h"
#include "gen/trace_generator.h"
#include "graph/event_stream.h"
#include "io/binary_event_log.h"
#include "scenario/assertions.h"
#include "util/parallel.h"

namespace msd {
namespace {

namespace fs = std::filesystem;

std::string tempPath(const std::string& name) {
  return (fs::temp_directory_path() / ("msd_streampipe_" + name)).string();
}

/// Restores the pool size on scope exit (mirrors the incremental-metrics
/// tests' guard).
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(threadCount()) {}
  ~ThreadCountGuard() { setThreadCount(saved_); }

 private:
  std::size_t saved_;
};

/// Bitwise double equality: hexfloat-identical means identical bits.
void expectSameBits(double a, double b, const std::string& what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

void expectSameSeries(const TimeSeries& a, const TimeSeries& b) {
  ASSERT_EQ(a.size(), b.size()) << a.name();
  for (std::size_t i = 0; i < a.size(); ++i) {
    expectSameBits(a.timeAt(i), b.timeAt(i), a.name() + " time " +
                                                 std::to_string(i));
    expectSameBits(a.valueAt(i), b.valueAt(i), a.name() + " value " +
                                                   std::to_string(i));
  }
}

TEST(StreamingPipelineTest, SeriesFromBinaryMatchesInMemoryAcrossThreads) {
  ThreadCountGuard guard;
  TraceGenerator generator(GeneratorConfig::tiny(5));
  const EventStream stream = generator.generate();
  const std::string path = tempPath("series.msdbin");
  io::writeBinaryLogFile(stream, path, {});

  MetricsOverTimeConfig config;
  config.snapshotStep = 5.0;
  config.pathEvery = 10.0;
  config.pathSamples = 8;
  config.clusteringSamples = 100;

  setThreadCount(1);
  const MetricsOverTime reference = analyzeMetricsOverTime(stream, config);
  ASSERT_GT(reference.averageDegree.size(), 5u);

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    setThreadCount(threads);
    io::BinaryEventReader reader(path);
    const MetricsOverTime streamed =
        analyzeMetricsOverTime(reader, reader.lastTime(), config);
    expectSameSeries(reference.averageDegree, streamed.averageDegree);
    expectSameSeries(reference.averagePathLength, streamed.averagePathLength);
    expectSameSeries(reference.clusteringCoefficient,
                     streamed.clusteringCoefficient);
    expectSameSeries(reference.assortativity, streamed.assortativity);
  }
  fs::remove(path);
}

TEST(StreamingPipelineTest, TinyChunksDoNotChangeTheSeries) {
  // Chunk boundaries (both block size on disk and the engine's window
  // cap) must be invisible in the results: integer sufficient statistics
  // make window splits exact.
  ThreadCountGuard guard;
  setThreadCount(2);
  TraceGenerator generator(GeneratorConfig::tiny(6));
  const EventStream stream = generator.generate();
  const std::string path = tempPath("chunky.msdbin");
  io::BinaryLogOptions options;
  options.blockCapacityBytes = 256;  // hundreds of blocks for a tiny trace
  io::writeBinaryLogFile(stream, path, options);

  MetricsOverTimeConfig config;
  config.snapshotStep = 10.0;
  config.pathSamples = 4;
  config.clusteringSamples = 50;
  const MetricsOverTime reference = analyzeMetricsOverTime(stream, config);
  io::BinaryEventReader reader(path);
  const MetricsOverTime streamed =
      analyzeMetricsOverTime(reader, reader.lastTime(), config);
  expectSameSeries(reference.averageDegree, streamed.averageDegree);
  expectSameSeries(reference.averagePathLength, streamed.averagePathLength);
  expectSameSeries(reference.clusteringCoefficient,
                   streamed.clusteringCoefficient);
  expectSameSeries(reference.assortativity, streamed.assortativity);
  fs::remove(path);
}

TEST(StreamingPipelineTest, ScenarioReportFromBinaryTraceMatchesInMemory) {
  ThreadCountGuard guard;
  const GeneratorConfig config = GeneratorConfig::tiny(9);
  TraceGenerator generator(config);
  const EventStream stream = generator.generate();
  const std::string path = tempPath("report.msdbin");
  io::writeBinaryLogFile(stream, path, {});

  setThreadCount(1);
  const scenario::ScenarioReport reference =
      scenario::computeReport(stream, config);

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    setThreadCount(threads);
    io::BinaryEventReader reader(path);
    const EventStream replayed = reader.readAll();
    const scenario::ScenarioReport fromBinary =
        scenario::computeReport(replayed, config);
    ASSERT_EQ(fromBinary.metrics().size(), reference.metrics().size());
    for (std::size_t i = 0; i < reference.metrics().size(); ++i) {
      EXPECT_EQ(fromBinary.metrics()[i].first, reference.metrics()[i].first);
      expectSameBits(fromBinary.metrics()[i].second,
                     reference.metrics()[i].second,
                     "metric " + reference.metrics()[i].first + " at " +
                         std::to_string(threads) + " threads");
    }
  }
  fs::remove(path);
}

TEST(StreamingPipelineTest, ChunkedGenerationMatchesOneShotByteForByte) {
  // The streaming generator path (generateTo) must emit the exact event
  // sequence of the in-memory path (generate): same RNG draws, same
  // emission order, hence identical msd-bin-v1 files.
  io::BinaryLogOptions options;
  options.seed = 12;
  options.manifestJson =
      "{\"schema\":\"msd-run-v1\",\"build_type\":\"Release\","
      "\"build_flags\":[],\"obs\":true,\"git\":\"pinned\",\"seed\":12,"
      "\"threads\":1,\"args\":[]}";

  const std::string oneShotPath = tempPath("oneshot.msdbin");
  {
    TraceGenerator generator(GeneratorConfig::tiny(12));
    const EventStream stream = generator.generate();
    io::writeBinaryLogFile(stream, oneShotPath, options);
  }
  const std::string streamedPath = tempPath("streamed.msdbin");
  TraceGenerator::GenerateStats stats{};
  {
    TraceGenerator generator(GeneratorConfig::tiny(12));
    io::BinaryEventWriter writer(streamedPath, options);
    stats = generator.generateTo(writer);
    writer.close();
  }
  EXPECT_GT(stats.nodes, 100u);

  std::ifstream a(oneShotPath, std::ios::binary);
  std::ifstream b(streamedPath, std::ios::binary);
  const std::string bytesA((std::istreambuf_iterator<char>(a)),
                           std::istreambuf_iterator<char>());
  const std::string bytesB((std::istreambuf_iterator<char>(b)),
                           std::istreambuf_iterator<char>());
  EXPECT_EQ(bytesA.size(), bytesB.size());
  EXPECT_TRUE(bytesA == bytesB)
      << "streamed generation diverged from one-shot generation";
  fs::remove(oneShotPath);
  fs::remove(streamedPath);
}

}  // namespace
}  // namespace msd
