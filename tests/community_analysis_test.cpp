#include "analysis/community_analysis.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "analysis/user_activity.h"
#include "gen/trace_generator.h"

namespace msd {
namespace {

/// Shared tiny-trace community analysis (computed once; Louvain over ~30
/// snapshots).
class CommunityAnalysisTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TraceGenerator generator(GeneratorConfig::tiny(1));
    stream_ = new EventStream(generator.generate());
    CommunityAnalysisConfig config;
    config.startDay = 15.0;
    config.snapshotStep = 3.0;
    config.tracker.minCommunitySize = 5;
    config.sizeDistributionDays = {50.0, 99.0};
    config.excludeBirthLo = 59.0;
    config.excludeBirthHi = 62.0;
    result_ = new CommunityAnalysisResult(analyzeCommunities(*stream_, config));
  }
  static void TearDownTestSuite() {
    delete stream_;
    delete result_;
    stream_ = nullptr;
    result_ = nullptr;
  }
  static EventStream* stream_;
  static CommunityAnalysisResult* result_;
};

EventStream* CommunityAnalysisTest::stream_ = nullptr;
CommunityAnalysisResult* CommunityAnalysisTest::result_ = nullptr;

TEST_F(CommunityAnalysisTest, ModularityIndicatesCommunityStructure) {
  ASSERT_GT(result_->modularity.size(), 10u);
  // The paper reports modularity above 0.4 on the full-size network; the
  // 100-day toy trace is much denser relative to its size, so we assert
  // clear community structure (well above random) and an upward trend as
  // the homophily groups grow out.
  for (std::size_t i = 0; i < result_->modularity.size(); ++i) {
    EXPECT_GT(result_->modularity.valueAt(i), 0.18)
        << "day " << result_->modularity.timeAt(i);
  }
  EXPECT_GT(result_->modularity.lastValue(), 0.3);
}

TEST_F(CommunityAnalysisTest, SimilaritiesAreValidFractions) {
  ASSERT_FALSE(result_->avgSimilarity.empty());
  for (std::size_t i = 0; i < result_->avgSimilarity.size(); ++i) {
    EXPECT_GE(result_->avgSimilarity.valueAt(i), 0.0);
    EXPECT_LE(result_->avgSimilarity.valueAt(i), 1.0);
  }
}

TEST_F(CommunityAnalysisTest, TopCoverageIsValidPercentage) {
  ASSERT_FALSE(result_->topCoverage.empty());
  for (std::size_t i = 0; i < result_->topCoverage.size(); ++i) {
    EXPECT_GE(result_->topCoverage.valueAt(i), 0.0);
    EXPECT_LE(result_->topCoverage.valueAt(i), 100.0);
  }
}

TEST_F(CommunityAnalysisTest, SizeDistributionsCaptured) {
  ASSERT_EQ(result_->sizeDistributions.size(), 2u);
  for (const SizeDistribution& dist : result_->sizeDistributions) {
    ASSERT_FALSE(dist.sizes.empty());
    // Descending order, all above the tracker threshold.
    for (std::size_t i = 1; i < dist.sizes.size(); ++i) {
      EXPECT_LE(dist.sizes[i], dist.sizes[i - 1]);
    }
    EXPECT_GE(dist.sizes.back(), 5u);
  }
}

TEST_F(CommunityAnalysisTest, LifetimesAreNonNegative) {
  ASSERT_FALSE(result_->lifetimes.empty());
  for (double lifetime : result_->lifetimes) EXPECT_GE(lifetime, 0.0);
}

TEST_F(CommunityAnalysisTest, RatiosAreInUnitInterval) {
  for (const GroupSizeRatio& r : result_->mergeRatios) {
    EXPECT_GT(r.ratio, 0.0);
    EXPECT_LE(r.ratio, 1.0);
  }
  for (const GroupSizeRatio& r : result_->splitRatios) {
    EXPECT_GT(r.ratio, 0.0);
    EXPECT_LE(r.ratio, 1.0);
  }
}

TEST_F(CommunityAnalysisTest, MembershipConsistentWithSizes) {
  ASSERT_EQ(result_->finalMembership.size(), stream_->nodeCount());
  std::vector<std::size_t> counted(result_->finalCommunitySize.size(), 0);
  for (std::uint32_t m : result_->finalMembership) {
    if (m == 0xffffffffu) continue;
    ASSERT_LT(m, counted.size());
    ++counted[m];
  }
  for (std::size_t c = 0; c < counted.size(); ++c) {
    if (counted[c] > 0) {
      EXPECT_EQ(counted[c], result_->finalCommunitySize[c]);
    }
  }
}

TEST_F(CommunityAnalysisTest, StrongestTieRuleUsuallyHolds) {
  // The paper reports 99%; on a small noisy trace we only require a
  // clear majority.
  std::size_t hits = 0;
  for (const auto& [day, strongest] : result_->strongestTieOutcomes) {
    if (strongest) ++hits;
  }
  if (result_->strongestTieOutcomes.size() >= 10) {
    EXPECT_GT(static_cast<double>(hits) /
                  static_cast<double>(result_->strongestTieOutcomes.size()),
              0.6);
  }
}

TEST_F(CommunityAnalysisTest, MergeSamplesWellFormed) {
  for (const MergeSample& sample : result_->mergeSamples) {
    EXPECT_EQ(sample.features.size(), mergeFeatureNames().size());
    EXPECT_GE(sample.age, 0.0);
  }
}

TEST_F(CommunityAnalysisTest, UserActivityCohortsOrdered) {
  UserActivityConfig config;
  config.bands = {{5, 50, "[5,50)"}, {50, 0, "50+"}};
  const UserActivityResult activity = analyzeUserActivity(
      *stream_, result_->finalMembership, result_->finalCommunitySize,
      config);
  EXPECT_GT(activity.allCommunity.users, 0u);
  // Community users are more active: longer lifetimes, and inter-arrival
  // gaps no worse than non-community users (the gap ordering is strict at
  // bench scale — see fig7 — but statistically tight on the 100-day toy
  // trace, so allow a small tolerance here).
  if (activity.nonCommunity.users > 50) {
    EXPECT_LT(activity.allCommunity.meanInterArrival,
              activity.nonCommunity.meanInterArrival * 1.15);
    EXPECT_GT(activity.allCommunity.meanLifetime,
              activity.nonCommunity.meanLifetime);
  }
  for (const ActivityCohort& cohort : activity.byBand) {
    for (const CdfPoint& point : cohort.inDegreeRatioCdf) {
      EXPECT_GE(point.value, 0.0);
      EXPECT_LE(point.value, 1.0);
    }
  }
}

TEST(MergePredictionTest, LearnsSyntheticRule) {
  // Synthetic samples: "will merge" iff self-similarity dropped and the
  // community is small — a linearly separable rule in feature space.
  Rng rng(5);
  std::vector<MergeSample> samples;
  for (int i = 0; i < 600; ++i) {
    MergeSample sample;
    const bool merge = i % 3 == 0;
    sample.willMerge = merge;
    sample.age = 20.0 + rng.uniform(0.0, 60.0);
    sample.features.assign(mergeFeatureNames().size(), 0.0);
    sample.features[0] = merge ? rng.uniform(10, 30) : rng.uniform(60, 200);
    sample.features[8] = merge ? rng.uniform(0.1, 0.4) : rng.uniform(0.6, 0.95);
    sample.features[12] = sample.age;
    samples.push_back(std::move(sample));
  }
  const MergePredictionResult result = evaluateMergePrediction(samples);
  EXPECT_GT(result.mergeAccuracy, 0.9);
  EXPECT_GT(result.noMergeAccuracy, 0.9);
  EXPECT_GT(result.trainSize, 250u);
  ASSERT_FALSE(result.byAge.empty());
  std::size_t tested = 0;
  for (const AgeBinAccuracy& bin : result.byAge) {
    tested += bin.mergeCount + bin.noMergeCount;
  }
  EXPECT_EQ(tested, result.testSize);
}

TEST(MergePredictionTest, TooFewSamplesReturnsEmpty) {
  std::vector<MergeSample> samples(5);
  const MergePredictionResult result = evaluateMergePrediction(samples);
  EXPECT_EQ(result.testSize, 0u);
  EXPECT_TRUE(result.byAge.empty());
}

TEST(MergePredictionTest, SingleClassReturnsEmpty) {
  std::vector<MergeSample> samples;
  for (int i = 0; i < 50; ++i) {
    MergeSample sample;
    sample.willMerge = false;
    sample.features.assign(13, 1.0);
    samples.push_back(sample);
  }
  const MergePredictionResult result = evaluateMergePrediction(samples);
  EXPECT_EQ(result.testSize, 0u);
}


TEST(DeltaSelectionTest, PicksBalancedCandidate) {
  TraceGenerator generator(GeneratorConfig::tiny(3));
  const EventStream stream = generator.generate();
  CommunityAnalysisConfig config;
  config.startDay = 20.0;
  config.snapshotStep = 6.0;
  config.tracker.minCommunitySize = 5;
  const DeltaSelection selection =
      selectDelta(stream, {0.01, 0.1, 0.3}, config);
  ASSERT_EQ(selection.scores.size(), 3u);
  // The winner carries the maximal balance score.
  double best = -1.0;
  for (const DeltaScore& score : selection.scores) {
    best = std::max(best, score.balance);
    EXPECT_GE(score.meanModularity, 0.0);
    EXPECT_GE(score.meanSimilarity, 0.0);
    EXPECT_LE(score.meanSimilarity, 1.0);
  }
  for (const DeltaScore& score : selection.scores) {
    if (score.delta == selection.best) {
      EXPECT_DOUBLE_EQ(score.balance, best);
    }
  }
}

TEST(DeltaSelectionTest, RejectsEmptyCandidates) {
  EXPECT_THROW((void)selectDelta(EventStream{}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace msd
