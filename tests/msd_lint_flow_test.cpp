// Fixture coverage for the flow-aware hazard classes H6–H9 and the
// lambda/region parsing layer underneath them: capture-list edge cases
// (defaults, init-captures, this, nested lambdas), function-region
// detection, and positive + negative fixtures per hazard class.

#include "msd_lint/flow.h"
#include "msd_lint/lint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace msd::lint {
namespace {

SourceFile file(std::string path, std::string text) {
  SourceFile f;
  f.path = std::move(path);
  f.text = std::move(text);
  return f;
}

std::vector<Finding> scan(std::vector<SourceFile> files) {
  return scanFiles(files, {});
}

std::vector<Finding> byHazard(const std::vector<Finding>& findings,
                              const std::string& hazard) {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (f.hazard == hazard) out.push_back(f);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Lambda capture-list parsing.
// ---------------------------------------------------------------------------

TEST(LintFlowTest, ParsesExplicitCaptures) {
  const std::string text = "auto f = [&a, b, this](int i) { return i; };";
  const auto lambda = flow::parseLambdaAt(text, text.find('['));
  ASSERT_TRUE(lambda.has_value());
  EXPECT_FALSE(lambda->defaultByRef);
  EXPECT_FALSE(lambda->defaultByValue);
  EXPECT_TRUE(lambda->capturesThis);
  EXPECT_EQ(lambda->refCaptures.count("a"), 1u);
  EXPECT_EQ(lambda->valueCaptures.count("b"), 1u);
  ASSERT_EQ(lambda->params.size(), 1u);
  EXPECT_EQ(lambda->params[0], "i");
}

TEST(LintFlowTest, ParsesCaptureDefaults) {
  const std::string byRef = "[&](int i) { return i; }";
  const auto a = flow::parseLambdaAt(byRef, 0);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->defaultByRef);

  const std::string byValue = "[=]() { return 1; }";
  const auto b = flow::parseLambdaAt(byValue, 0);
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(b->defaultByValue);

  const std::string starThis = "[*this]() { return 1; }";
  const auto c = flow::parseLambdaAt(starThis, 0);
  ASSERT_TRUE(c.has_value());
  EXPECT_FALSE(c->capturesThis);  // *this copies the object
  EXPECT_EQ(c->valueCaptures.count("this"), 1u);
}

TEST(LintFlowTest, ParsesInitCaptures) {
  const std::string text = "[&acc = out, n = out.size()]() { acc.clear(); }";
  const auto lambda = flow::parseLambdaAt(text, 0);
  ASSERT_TRUE(lambda.has_value());
  EXPECT_EQ(lambda->refCaptures.count("acc"), 1u);
  EXPECT_EQ(lambda->valueCaptures.count("n"), 1u);
  // The init expressions themselves are not capture names.
  EXPECT_EQ(lambda->refCaptures.count("out"), 0u);
  EXPECT_EQ(lambda->valueCaptures.count("out"), 0u);
}

TEST(LintFlowTest, ParsesTemplateLambda) {
  const std::string text = "[]<typename T>(T value) { return value; }";
  const auto lambda = flow::parseLambdaAt(text, 0);
  ASSERT_TRUE(lambda.has_value());
  ASSERT_EQ(lambda->params.size(), 1u);
  EXPECT_EQ(lambda->params[0], "value");
}

TEST(LintFlowTest, SubscriptIsNotALambda) {
  const std::string text = "void f() { arr[i] = 0; g(arr[j]); }";
  const auto lambdas = flow::lambdasIn(text, 0, text.size());
  EXPECT_TRUE(lambdas.empty());
}

TEST(LintFlowTest, FindsNestedLambdas) {
  const std::string text =
      "run([&](int i) { auto g = [&](int j) { return j; }; g(i); });";
  const auto lambdas = flow::lambdasIn(text, 0, text.size());
  ASSERT_EQ(lambdas.size(), 2u);
  // Sorted by position: the outer one first, the nested one inside it.
  EXPECT_LT(lambdas[0].bodyOpen, lambdas[1].captureOpen);
  EXPECT_GT(lambdas[0].bodyClose, lambdas[1].bodyClose);
}

TEST(LintFlowTest, FunctionRegionsSkipControlFlow) {
  const std::string text =
      "int f(int x) {\n"
      "  if (x > 0) { return x; }\n"
      "  for (int i = 0; i < x; ++i) { x += i; }\n"
      "  return x;\n"
      "}\n"
      "void g() { f(1); }\n";
  const auto regions = flow::functionRegions(text);
  ASSERT_EQ(regions.size(), 2u);
}

TEST(LintFlowTest, DeclaredNamesFindLocalsAndBindings) {
  const std::string text =
      "  std::size_t count = 0;\n"
      "  auto [key, value] = *it;\n"
      "  std::vector<int>& slot = buckets[0];\n";
  const auto names = flow::declaredNames(text, 0, text.size());
  EXPECT_EQ(names.count("count"), 1u);
  EXPECT_EQ(names.count("key"), 1u);
  EXPECT_EQ(names.count("value"), 1u);
  EXPECT_EQ(names.count("slot"), 1u);
}

// ---------------------------------------------------------------------------
// H6: shared-state writes in pool lambdas.
// ---------------------------------------------------------------------------

TEST(LintH6Test, PushBackToRefCapturedVectorIsFlagged) {
  const auto findings = scan({file("src/metrics/agg.cpp",
                                   "#include \"util/parallel.h\"\n"
                                   "void f(ThreadPool& pool, int n) {\n"
                                   "  std::vector<int> out;\n"
                                   "  parallelFor(pool, 0, n, 16, [&](std::size_t i) {\n"
                                   "    out.push_back(static_cast<int>(i));\n"
                                   "  });\n"
                                   "}\n")});
  const auto h6 = byHazard(findings, "H6");
  ASSERT_EQ(h6.size(), 1u);
  EXPECT_EQ(h6[0].line, 5u);
  EXPECT_NE(h6[0].message.find("push_back"), std::string::npos);
}

TEST(LintH6Test, AssignmentToRefCapturedScalarIsFlagged) {
  const auto findings = scan({file("src/metrics/agg.cpp",
                                   "void f(ThreadPool& pool, int n) {\n"
                                   "  int last = 0;\n"
                                   "  parallelForChunks(pool, 0, n, [&](std::size_t b, std::size_t e) {\n"
                                   "    last = static_cast<int>(e);\n"
                                   "  });\n"
                                   "}\n")});
  ASSERT_EQ(byHazard(findings, "H6").size(), 1u);
}

TEST(LintH6Test, InitCaptureByRefIsFlagged) {
  const auto findings = scan({file("src/metrics/agg.cpp",
                                   "void f(ThreadPool& pool, int n) {\n"
                                   "  std::vector<int> out;\n"
                                   "  pool.run([&acc = out]() {\n"
                                   "    acc.clear();\n"
                                   "  });\n"
                                   "}\n")});
  ASSERT_EQ(byHazard(findings, "H6").size(), 1u);
}

TEST(LintH6Test, WriteThroughValueCapturedPointerIsFlagged) {
  const auto findings = scan({file("src/metrics/agg.cpp",
                                   "void f(ThreadPool& pool, int n, int* total) {\n"
                                   "  parallelFor(pool, 0, n, 16, [total](std::size_t i) {\n"
                                   "    *total += static_cast<int>(i);\n"
                                   "  });\n"
                                   "}\n")});
  ASSERT_EQ(byHazard(findings, "H6").size(), 1u);
}

TEST(LintH6Test, WriteInsideNestedLambdaIsFlagged) {
  const auto findings = scan({file("src/metrics/agg.cpp",
                                   "void f(ThreadPool& pool, int n) {\n"
                                   "  std::vector<int> out;\n"
                                   "  parallelFor(pool, 0, n, 16, [&](std::size_t i) {\n"
                                   "    auto emit = [&]() { out.push_back(1); };\n"
                                   "    emit();\n"
                                   "  });\n"
                                   "}\n")});
  ASSERT_EQ(byHazard(findings, "H6").size(), 1u);
}

TEST(LintH6Test, InductionIndexedSlotIsNotFlagged) {
  const auto findings = scan({file("src/metrics/agg.cpp",
                                   "void f(ThreadPool& pool, int n) {\n"
                                   "  std::vector<int> out(n);\n"
                                   "  parallelFor(pool, 0, n, 16, [&](std::size_t i) {\n"
                                   "    out[i] = static_cast<int>(i);\n"
                                   "  });\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H6").empty());
}

TEST(LintH6Test, AtomicWritesAreNotFlagged) {
  const auto findings = scan({file("src/metrics/agg.cpp",
                                   "void f(ThreadPool& pool, int n) {\n"
                                   "  std::atomic<int> total{0};\n"
                                   "  parallelFor(pool, 0, n, 16, [&](std::size_t i) {\n"
                                   "    total.fetch_add(1);\n"
                                   "  });\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H6").empty());
}

TEST(LintH6Test, ValueCapturedCopyIsNotFlagged) {
  const auto findings = scan({file("src/metrics/agg.cpp",
                                   "void f(ThreadPool& pool, int n) {\n"
                                   "  int total = 0;\n"
                                   "  parallelFor(pool, 0, n, 16, [total](std::size_t i) mutable {\n"
                                   "    total += static_cast<int>(i);\n"
                                   "  });\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H6").empty());
}

TEST(LintH6Test, LambdaLocalStateIsNotFlagged) {
  const auto findings = scan({file("src/metrics/agg.cpp",
                                   "void f(ThreadPool& pool, int n) {\n"
                                   "  parallelFor(pool, 0, n, 16, [&](std::size_t i) {\n"
                                   "    std::vector<int> scratch;\n"
                                   "    scratch.push_back(static_cast<int>(i));\n"
                                   "  });\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H6").empty());
}

TEST(LintH6Test, NestedValueCaptureShadowsSharedName) {
  // The nested lambda copies `total`; its write hits the copy.
  const auto findings = scan({file("src/metrics/agg.cpp",
                                   "void f(ThreadPool& pool, int n) {\n"
                                   "  int total = 0;\n"
                                   "  parallelFor(pool, 0, n, 16, [&](std::size_t i) {\n"
                                   "    auto g = [total]() mutable { total += 1; };\n"
                                   "    g();\n"
                                   "  });\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H6").empty());
}

TEST(LintH6Test, InlineAllowSuppressesH6) {
  const auto findings = scan({file("src/metrics/agg.cpp",
                                   "void f(ThreadPool& pool, int n) {\n"
                                   "  std::vector<int> out;\n"
                                   "  parallelFor(pool, 0, n, 16, [&](std::size_t i) {\n"
                                   "    // msd-lint: allow(H6: guarded by the external mutex)\n"
                                   "    out.push_back(static_cast<int>(i));\n"
                                   "  });\n"
                                   "}\n")});
  const auto h6 = byHazard(findings, "H6");
  ASSERT_EQ(h6.size(), 1u);
  EXPECT_TRUE(h6[0].suppressed);
}

// ---------------------------------------------------------------------------
// H7: unchecked wire-parse byte access.
// ---------------------------------------------------------------------------

TEST(LintH7Test, UnguardedSubscriptIsFlagged) {
  const auto findings = scan({file("src/io/reader.cpp",
                                   "int f(const std::uint8_t* data, std::size_t size) {\n"
                                   "  return data[12];\n"
                                   "}\n")});
  const auto h7 = byHazard(findings, "H7");
  ASSERT_EQ(h7.size(), 1u);
  EXPECT_EQ(h7[0].line, 2u);
}

TEST(LintH7Test, GuardedSubscriptIsNotFlagged) {
  const auto findings = scan({file("src/io/reader.cpp",
                                   "int f(const std::uint8_t* data, std::size_t size) {\n"
                                   "  if (size < 16) return 0;\n"
                                   "  return data[12];\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H7").empty());
}

TEST(LintH7Test, UnguardedPointerArithmeticIsFlagged) {
  const auto findings = scan({file("src/io/reader.cpp",
                                   "int f(const std::uint8_t* data, std::size_t off) {\n"
                                   "  return parseAt(data + off);\n"
                                   "}\n")});
  ASSERT_EQ(byHazard(findings, "H7").size(), 1u);
}

TEST(LintH7Test, CheckedVarintReaderIsNotFlagged) {
  const auto findings = scan({file("src/io/reader.cpp",
                                   "int f(const std::uint8_t* data, std::size_t size, std::size_t off) {\n"
                                   "  const auto r = decodeVarint(data + off, size - off);\n"
                                   "  return r.ok ? 1 : 0;\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H7").empty());
}

TEST(LintH7Test, UnguardedMemcpyIsFlagged) {
  const auto findings = scan({file("src/io/reader.cpp",
                                   "int f(const std::uint8_t* bytes) {\n"
                                   "  int v;\n"
                                   "  std::memcpy(&v, bytes, 4);\n"
                                   "  return v;\n"
                                   "}\n")});
  const auto h7 = byHazard(findings, "H7");
  ASSERT_EQ(h7.size(), 1u);
  EXPECT_NE(h7[0].message.find("memcpy"), std::string::npos);
}

TEST(LintH7Test, WriterSideBufferIsNotFlagged) {
  // Non-const byte buffers are the writer side: exempt.
  const auto findings = scan({file("src/io/writer.cpp",
                                   "void f() {\n"
                                   "  std::uint8_t header[16];\n"
                                   "  header[0] = 1;\n"
                                   "  std::memcpy(header + 4, header, 4);\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H7").empty());
}

TEST(LintH7Test, SameNameInOtherFunctionDoesNotTaintWriter) {
  // Regression: a reader-side `const std::uint8_t* header` local in one
  // function must not turn a writer-side `header` array in another
  // function into a mapped-byte access.
  const auto findings = scan({file("src/io/log.cpp",
                                   "int read(const std::uint8_t* base, std::size_t size) {\n"
                                   "  if (size < 8) return 0;\n"
                                   "  const std::uint8_t* header = base;\n"
                                   "  return header[4];\n"
                                   "}\n"
                                   "void write() {\n"
                                   "  std::uint8_t header[16];\n"
                                   "  header[0] = 1;\n"
                                   "  std::memcpy(header + 4, header, 4);\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H7").empty());
}

TEST(LintH7Test, WireLayerItselfIsExempt) {
  const auto findings = scan({file("src/io/wire.cpp",
                                   "int f(const std::uint8_t* data) {\n"
                                   "  return data[0];\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H7").empty());
}

TEST(LintH7Test, OutsideIoLayerIsExempt) {
  const auto findings = scan({file("src/metrics/raw.cpp",
                                   "int f(const std::uint8_t* data) {\n"
                                   "  return data[0];\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H7").empty());
}

TEST(LintH7Test, CompanionHeaderMemberIsScanned) {
  // A const byte-pointer member declared in the companion .h is in
  // scope everywhere in the .cpp.
  const auto findings = scan(
      {file("src/io/mapped.h",
            "struct Mapped {\n"
            "  const std::uint8_t* data_ = nullptr;\n"
            "  std::size_t size_ = 0;\n"
            "};\n"),
       file("src/io/mapped.cpp",
            "#include \"io/mapped.h\"\n"
            "int Mapped_peek(const Mapped& m) {\n"
            "  return m_data[0];\n"
            "}\n"
            "int peekRaw() {\n"
            "  return data_[0];\n"
            "}\n")});
  const auto h7 = byHazard(findings, "H7");
  ASSERT_EQ(h7.size(), 1u);
  EXPECT_EQ(h7[0].file, "src/io/mapped.cpp");
  EXPECT_EQ(h7[0].line, 6u);
}

// ---------------------------------------------------------------------------
// H8: discarded error-bearing results.
// ---------------------------------------------------------------------------

TEST(LintH8Test, DiscardedBoolParseResultIsFlagged) {
  const auto findings = scan({file("src/io/parse.cpp",
                                   "bool parseHeader(int x);\n"
                                   "void f(int x) {\n"
                                   "  parseHeader(x);\n"
                                   "}\n")});
  const auto h8 = byHazard(findings, "H8");
  ASSERT_EQ(h8.size(), 1u);
  EXPECT_EQ(h8[0].line, 3u);
}

TEST(LintH8Test, DiscardedExpectedResultIsFlagged) {
  const auto findings = scan({file("src/io/parse.cpp",
                                   "Expected<int> countEvents(int x);\n"
                                   "void f(int x) {\n"
                                   "  countEvents(x);\n"
                                   "}\n")});
  ASSERT_EQ(byHazard(findings, "H8").size(), 1u);
}

TEST(LintH8Test, DiscardedCallInsideIfBodyIsFlagged) {
  const auto findings = scan({file("src/io/parse.cpp",
                                   "bool readBlock(int x);\n"
                                   "void f(int x, bool go) {\n"
                                   "  if (go) readBlock(x);\n"
                                   "}\n")});
  ASSERT_EQ(byHazard(findings, "H8").size(), 1u);
}

TEST(LintH8Test, BranchedOnResultIsNotFlagged) {
  const auto findings = scan({file("src/io/parse.cpp",
                                   "bool parseHeader(int x);\n"
                                   "bool f(int x) {\n"
                                   "  if (!parseHeader(x)) return false;\n"
                                   "  const bool ok = parseHeader(x + 1);\n"
                                   "  return ok;\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H8").empty());
}

TEST(LintH8Test, VoidCastIsAnExplicitWaiver) {
  const auto findings = scan({file("src/io/parse.cpp",
                                   "bool flushTail(int x);\n"
                                   "void f(int x) {\n"
                                   "  (void)flushTail(x);\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H8").empty());
}

TEST(LintH8Test, UnexaminedErrorCodeIsFlagged) {
  const auto findings = scan({file("src/io/fsops.cpp",
                                   "void f(const std::string& dir) {\n"
                                   "  std::error_code ec;\n"
                                   "  std::filesystem::create_directories(dir, ec);\n"
                                   "}\n")});
  const auto h8 = byHazard(findings, "H8");
  ASSERT_EQ(h8.size(), 1u);
  EXPECT_EQ(h8[0].line, 2u);
}

TEST(LintH8Test, ExaminedErrorCodeIsNotFlagged) {
  const auto findings = scan({file("src/io/fsops.cpp",
                                   "bool f(const std::string& dir) {\n"
                                   "  std::error_code ec;\n"
                                   "  std::filesystem::create_directories(dir, ec);\n"
                                   "  if (ec) return false;\n"
                                   "  return true;\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H8").empty());
}

TEST(LintH8Test, PropagatedErrorCodeIsNotFlagged) {
  const auto findings = scan({file("src/io/fsops.cpp",
                                   "std::error_code f(const std::string& dir) {\n"
                                   "  std::error_code ec;\n"
                                   "  std::filesystem::create_directories(dir, ec);\n"
                                   "  return ec;\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H8").empty());
}

// ---------------------------------------------------------------------------
// H9: nondeterministic ordering sinks.
// ---------------------------------------------------------------------------

TEST(LintH9Test, DefaultSortOfPointerSequenceIsFlagged) {
  const auto findings = scan({file("src/metrics/report.cpp",
                                   "#include <cstdio>\n"
                                   "struct Node { int id; };\n"
                                   "void f(std::vector<const Node*>& items) {\n"
                                   "  std::sort(items.begin(), items.end());\n"
                                   "  for (const Node* n : items) printf(\"%d\\n\", n->id);\n"
                                   "}\n")});
  const auto h9 = byHazard(findings, "H9");
  ASSERT_EQ(h9.size(), 1u);
  EXPECT_EQ(h9[0].line, 4u);
}

TEST(LintH9Test, AddressComparatorIsFlagged) {
  const auto findings = scan({file("src/metrics/report.cpp",
                                   "#include <cstdio>\n"
                                   "struct Node { int id; };\n"
                                   "void f(std::vector<Node*>& items) {\n"
                                   "  std::sort(items.begin(), items.end(),\n"
                                   "            [](const Node* a, const Node* b) { return a < b; });\n"
                                   "  printf(\"%zu\\n\", items.size());\n"
                                   "}\n")});
  ASSERT_EQ(byHazard(findings, "H9").size(), 1u);
}

TEST(LintH9Test, KeyComparatorIsNotFlagged) {
  const auto findings = scan({file("src/metrics/report.cpp",
                                   "#include <cstdio>\n"
                                   "struct Node { int id; };\n"
                                   "void f(std::vector<Node*>& items) {\n"
                                   "  std::sort(items.begin(), items.end(),\n"
                                   "            [](const Node* a, const Node* b) { return a->id < b->id; });\n"
                                   "  printf(\"%zu\\n\", items.size());\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H9").empty());
}

TEST(LintH9Test, UnsortedUnorderedExtractionIsFlagged) {
  const auto findings = scan({file("src/metrics/report.cpp",
                                   "#include <cstdio>\n"
                                   "#include <unordered_map>\n"
                                   "void f(const std::unordered_map<int, int>& m) {\n"
                                   "  std::vector<std::pair<int, int>> rows(m.begin(), m.end());\n"
                                   "  printf(\"%zu\\n\", rows.size());\n"
                                   "}\n")});
  const auto h9 = byHazard(findings, "H9");
  ASSERT_EQ(h9.size(), 1u);
  EXPECT_EQ(h9[0].line, 4u);
}

TEST(LintH9Test, ExtractionSortedLaterIsNotFlagged) {
  const auto findings = scan({file("src/metrics/report.cpp",
                                   "#include <cstdio>\n"
                                   "#include <unordered_map>\n"
                                   "void f(const std::unordered_map<int, int>& m) {\n"
                                   "  std::vector<std::pair<int, int>> rows(m.begin(), m.end());\n"
                                   "  std::sort(rows.begin(), rows.end());\n"
                                   "  printf(\"%zu\\n\", rows.size());\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H9").empty());
}

TEST(LintH9Test, AccumulateOverUnorderedIsFlagged) {
  const auto findings = scan({file("src/metrics/report.cpp",
                                   "#include <cstdio>\n"
                                   "#include <unordered_map>\n"
                                   "double f(const std::unordered_map<int, double>& m) {\n"
                                   "  return std::accumulate(m.begin(), m.end(), 0.0, addValues);\n"
                                   "}\n")});
  ASSERT_EQ(byHazard(findings, "H9").size(), 1u);
}

TEST(LintH9Test, NonOutputRelevantFileIsExempt) {
  const auto findings = scan({file("src/graph/scratch.cpp",
                                   "struct Node { int id; };\n"
                                   "void f(std::vector<const Node*>& items) {\n"
                                   "  std::sort(items.begin(), items.end());\n"
                                   "}\n")});
  EXPECT_TRUE(byHazard(findings, "H9").empty());
}

}  // namespace
}  // namespace msd::lint
