// Qualitative-assertion harness of the scenario suite: every registered
// preset generates its trace, runs the full measurement pipeline
// (incremental Fig 1 metrics, pe(d)/alpha estimator, community
// pipeline), and must satisfy every one of its directional paper-claim
// expectations — alpha drops under spam-burst, clustering rises with
// homophily, the merge schedule spikes activity, stagnation-churn flips
// net growth negative. Reports must also be bit-identical at 1, 2, and
// 8 threads, so the expectations can never flake with pool size.

#include "scenario/assertions.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "gen/trace_generator.h"
#include "scenario/scenario.h"
#include "util/parallel.h"

namespace msd {
namespace {

using scenario::ScenarioExpectation;
using scenario::ScenarioReport;

/// Restores the configured thread count when a test exits.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(threadCount()) {}
  ~ThreadCountGuard() { setThreadCount(saved_); }

 private:
  std::size_t saved_;
};

ScenarioReport measure(const scenario::ScenarioPreset& preset) {
  const GeneratorConfig config =
      scenario::configFor(preset, scenario::Scale::kTiny, 1);
  TraceGenerator generator(config);
  const EventStream stream = generator.generate();
  return scenario::computeReport(stream, config);
}

/// One measured report per preset, built once for the whole suite (the
/// reference expectations need the baseline's report to resolve).
const std::map<std::string, ScenarioReport>& allReports() {
  static const std::map<std::string, ScenarioReport> reports = [] {
    std::map<std::string, ScenarioReport> built;
    for (const scenario::ScenarioPreset& preset : scenario::allPresets()) {
      built.emplace(preset.name, measure(preset));
    }
    return built;
  }();
  return reports;
}

TEST(ScenarioRegistryTest, ShipsAtLeastFivePresetsWithTwoClaimsEach) {
  const auto& presets = scenario::allPresets();
  EXPECT_GE(presets.size(), 5u);
  EXPECT_EQ(presets.front().name, "renren-baseline");
  for (const scenario::ScenarioPreset& preset : presets) {
    EXPECT_GE(preset.expectations.size(), 2u) << preset.name;
    for (const ScenarioExpectation& expectation : preset.expectations) {
      EXPECT_FALSE(expectation.claim.empty())
          << preset.name << ": " << describe(expectation);
    }
  }
}

TEST(ScenarioExpectationsTest, EveryPresetSatisfiesEveryClaim) {
  const auto& reports = allReports();
  for (const scenario::ScenarioPreset& preset : scenario::allPresets()) {
    const ScenarioReport& own = reports.at(preset.name);
    for (const ScenarioExpectation& expectation : preset.expectations) {
      const scenario::ExpectationOutcome outcome =
          scenario::evaluate(expectation, own, reports);
      EXPECT_TRUE(outcome.passed)
          << preset.name << ": " << outcome.text << " — " << expectation.claim;
    }
  }
}

TEST(ScenarioExpectationsTest, HeadlineInversionsHoldAgainstBaseline) {
  const auto& reports = allReports();
  const ScenarioReport& baseline = reports.at("renren-baseline");
  // Spam bots flatten pe(d): fitted alpha inverts downward.
  EXPECT_LT(reports.at("spam-burst").value("alpha.late"),
            baseline.value("alpha.late"));
  // Stronger homophily closes more wedges: clustering inverts upward.
  EXPECT_GT(reports.at("homophily-sweep").value("metrics.finalClustering"),
            baseline.value("metrics.finalClustering"));
  // The recurring merge schedule lands more activity spikes.
  EXPECT_GT(reports.at("repeated-merge").value("growth.edgeSpikeCount"),
            baseline.value("growth.edgeSpikeCount"));
  // Stagnation-churn flips net growth negative.
  EXPECT_LT(reports.at("stagnation-churn").value("active.lateOverPeak"), 1.0);
}

TEST(ScenarioReportTest, IsBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  for (const char* name : {"renren-baseline", "spam-burst"}) {
    const scenario::ScenarioPreset& preset = scenario::presetOrThrow(name);
    const GeneratorConfig config =
        scenario::configFor(preset, scenario::Scale::kTiny, 1);
    TraceGenerator generator(config);
    const EventStream stream = generator.generate();

    setThreadCount(1);
    const ScenarioReport reference = scenario::computeReport(stream, config);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      setThreadCount(threads);
      const ScenarioReport report = scenario::computeReport(stream, config);
      ASSERT_EQ(report.metrics().size(), reference.metrics().size());
      for (std::size_t i = 0; i < report.metrics().size(); ++i) {
        EXPECT_EQ(report.metrics()[i].first, reference.metrics()[i].first);
        // Exact: no tolerance — the engines are chunk-order invariant.
        EXPECT_EQ(report.metrics()[i].second, reference.metrics()[i].second)
            << name << " metric " << report.metrics()[i].first << " at "
            << threads << " threads";
      }
    }
  }
}

TEST(ExpectationDslTest, ConstantBoundsEvaluateDirectionally) {
  ScenarioReport report;
  report.set("m", 2.0);
  const std::map<std::string, ScenarioReport> none;
  EXPECT_TRUE(
      scenario::evaluate(scenario::expectAbove("m", 1.5, "c"), report, none)
          .passed);
  EXPECT_FALSE(
      scenario::evaluate(scenario::expectAbove("m", 2.0, "c"), report, none)
          .passed);
  EXPECT_TRUE(
      scenario::evaluate(scenario::expectBelow("m", 2.5, "c"), report, none)
          .passed);
  EXPECT_FALSE(
      scenario::evaluate(scenario::expectBelow("m", 2.0, "c"), report, none)
          .passed);
}

TEST(ExpectationDslTest, ReferenceBoundsScaleTheOtherScenariosMetric) {
  ScenarioReport own;
  own.set("m", 2.0);
  ScenarioReport ref;
  ref.set("m", 4.0);
  std::map<std::string, ScenarioReport> all;
  all.emplace("other", ref);
  const auto below =
      scenario::evaluate(scenario::expectBelowScenario("m", "other", 0.6, "c"),
                         own, all);
  EXPECT_TRUE(below.passed);  // 2.0 < 0.6 * 4.0
  EXPECT_EQ(below.rhs, 0.6 * 4.0);
  const auto above =
      scenario::evaluate(scenario::expectAboveScenario("m", "other", 0.6, "c"),
                         own, all);
  EXPECT_FALSE(above.passed);
}

TEST(ExpectationDslTest, MissingReferenceScenarioThrows) {
  ScenarioReport own;
  own.set("m", 2.0);
  const std::map<std::string, ScenarioReport> all;
  EXPECT_THROW(
      scenario::evaluate(scenario::expectAboveScenario("m", "ghost", 1.0, "c"),
                         own, all),
      std::invalid_argument);
}

TEST(ExpectationDslTest, DescribeRendersBothForms) {
  EXPECT_EQ(scenario::describe(scenario::expectAbove("a.b", 0.5, "c")),
            "a.b > 0.5");
  EXPECT_EQ(scenario::describe(
                scenario::expectBelowScenario("a.b", "base", 0.9, "c")),
            "a.b < 0.9 x base:a.b");
}

TEST(ScenarioReportTest, ValueThrowsOnUnknownMetricAndSetOverwrites) {
  ScenarioReport report;
  EXPECT_FALSE(report.has("x"));
  EXPECT_THROW(report.value("x"), std::invalid_argument);
  report.set("x", 1.0);
  report.set("x", 2.0);
  EXPECT_TRUE(report.has("x"));
  EXPECT_EQ(report.value("x"), 2.0);
  EXPECT_EQ(report.metrics().size(), 1u);
}

}  // namespace
}  // namespace msd
