#include "metrics/neighborhood.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "metrics/paths.h"
#include "util/rng.h"

namespace msd {
namespace {

Graph pathGraph(std::size_t n) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.addEdge(i, i + 1);
  return g;
}

TEST(NeighborhoodTest, EmptyGraph) {
  const NeighborhoodFunction f = neighborhoodFunction(Graph{});
  EXPECT_TRUE(f.pairs.empty());
}

TEST(NeighborhoodTest, CompleteGraphSaturatesAtOneHop) {
  Graph g(20);
  for (NodeId i = 0; i < 20; ++i) {
    for (NodeId j = i + 1; j < 20; ++j) g.addEdge(i, j);
  }
  AnfConfig config;
  config.registersLog2 = 8;
  const NeighborhoodFunction f = neighborhoodFunction(g, config);
  ASSERT_GE(f.pairs.size(), 2u);
  // pairs(0) ~ 20 (self), pairs(1) ~ 400, then flat.
  EXPECT_NEAR(f.pairs[0], 20.0, 5.0);
  EXPECT_NEAR(f.pairs[1], 400.0, 60.0);
  EXPECT_NEAR(f.pairs.back(), f.pairs[1], 1e-9);
  EXPECT_LT(f.effectiveDiameter(0.9), 1.5);
}

TEST(NeighborhoodTest, PathGraphAverageDistance) {
  // Exact mean distance of P_n is (n+1)/3.
  const std::size_t n = 64;
  const Graph g = pathGraph(n);
  AnfConfig config;
  config.registersLog2 = 8;
  config.maxHops = 70;
  const NeighborhoodFunction f = neighborhoodFunction(g, config);
  const double expected = static_cast<double>(n + 1) / 3.0;
  EXPECT_NEAR(f.averageDistance(), expected, expected * 0.15);
}

TEST(NeighborhoodTest, AgreesWithExactBfsOnRandomGraph) {
  Rng build(5);
  Graph g(300);
  for (int i = 0; i < 900; ++i) {
    const auto u = static_cast<NodeId>(build.uniformInt(300));
    const auto v = static_cast<NodeId>(build.uniformInt(300));
    if (u != v) g.addEdge(u, v);
  }
  // Exact mean distance over reachable pairs via all-pairs BFS.
  double total = 0.0;
  std::size_t pairs = 0;
  for (NodeId source = 0; source < g.nodeCount(); ++source) {
    const auto dist = bfsDistances(g, source);
    for (NodeId other = 0; other < g.nodeCount(); ++other) {
      if (other == source || dist[other] == kUnreachable) continue;
      total += static_cast<double>(dist[other]);
      ++pairs;
    }
  }
  const double exact = total / static_cast<double>(pairs);

  AnfConfig config;
  config.registersLog2 = 9;
  const NeighborhoodFunction f = neighborhoodFunction(g, config);
  EXPECT_NEAR(f.averageDistance(), exact, 0.25);
}

TEST(NeighborhoodTest, MonotoneNonDecreasing) {
  Rng build(9);
  Graph g(500);
  for (int i = 0; i < 1200; ++i) {
    const auto u = static_cast<NodeId>(build.uniformInt(500));
    const auto v = static_cast<NodeId>(build.uniformInt(500));
    if (u != v) g.addEdge(u, v);
  }
  const NeighborhoodFunction f = neighborhoodFunction(g);
  for (std::size_t h = 1; h < f.pairs.size(); ++h) {
    EXPECT_GE(f.pairs[h], f.pairs[h - 1] - 1e-9);
  }
}

TEST(NeighborhoodTest, EffectiveDiameterChecksArguments) {
  NeighborhoodFunction f;
  EXPECT_THROW((void)f.effectiveDiameter(), std::invalid_argument);
  f.pairs = {10.0, 50.0, 60.0};
  EXPECT_THROW((void)f.effectiveDiameter(0.0), std::invalid_argument);
  EXPECT_THROW((void)f.effectiveDiameter(1.5), std::invalid_argument);
  EXPECT_GT(f.effectiveDiameter(0.9), 0.0);
}

TEST(NeighborhoodTest, RejectsBadConfig) {
  AnfConfig config;
  config.registersLog2 = 2;
  EXPECT_THROW((void)neighborhoodFunction(Graph(2), config),
               std::invalid_argument);
  config.registersLog2 = 6;
  config.maxHops = 0;
  EXPECT_THROW((void)neighborhoodFunction(Graph(2), config),
               std::invalid_argument);
}

}  // namespace
}  // namespace msd
