#include "util/time_series.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace msd {
namespace {

TEST(TimeSeriesTest, StoresPointsInOrder) {
  TimeSeries series("demo");
  series.add(0.0, 1.0);
  series.add(1.0, 2.0);
  series.add(2.0, 4.0);
  EXPECT_EQ(series.name(), "demo");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series.timeAt(1), 1.0);
  EXPECT_DOUBLE_EQ(series.valueAt(2), 4.0);
}

TEST(TimeSeriesTest, EmptyBehaviour) {
  TimeSeries series;
  EXPECT_TRUE(series.empty());
  EXPECT_EQ(series.size(), 0u);
  EXPECT_DOUBLE_EQ(series.valueAtOrBefore(10.0, -1.0), -1.0);
  EXPECT_THROW((void)series.maxValue(), std::invalid_argument);
  EXPECT_THROW((void)series.lastValue(), std::invalid_argument);
}

TEST(TimeSeriesTest, ValueAtOrBeforeInterpolatesStepwise) {
  TimeSeries series("s");
  series.add(0.0, 10.0);
  series.add(5.0, 20.0);
  series.add(10.0, 30.0);
  EXPECT_DOUBLE_EQ(series.valueAtOrBefore(-1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(series.valueAtOrBefore(0.0), 10.0);
  EXPECT_DOUBLE_EQ(series.valueAtOrBefore(4.9), 10.0);
  EXPECT_DOUBLE_EQ(series.valueAtOrBefore(5.0), 20.0);
  EXPECT_DOUBLE_EQ(series.valueAtOrBefore(100.0), 30.0);
}

TEST(TimeSeriesTest, MinMaxLast) {
  TimeSeries series("s");
  series.add(0.0, 3.0);
  series.add(1.0, -2.0);
  series.add(2.0, 7.0);
  EXPECT_DOUBLE_EQ(series.maxValue(), 7.0);
  EXPECT_DOUBLE_EQ(series.minValue(), -2.0);
  EXPECT_DOUBLE_EQ(series.lastValue(), 7.0);
}

TEST(TimeSeriesTest, IndexBoundsChecked) {
  TimeSeries series("s");
  series.add(0.0, 1.0);
  EXPECT_THROW((void)series.timeAt(1), std::invalid_argument);
  EXPECT_THROW((void)series.valueAt(5), std::invalid_argument);
}

}  // namespace
}  // namespace msd
