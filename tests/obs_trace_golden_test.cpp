// Golden lock for the Chrome trace-event export (obs/events.h): a fixed
// single-threaded scope sequence is recorded and serialized, timestamps
// and the machine-specific provenance manifest are scrubbed, and the
// rest of the document — event order, names, phases, lanes, metadata
// shape — must match tests/golden/trace_events.golden byte for byte.
// This pins the exporter's wire format: a reordered lane, a renamed key,
// or a dropped metadata record is a reviewed diff, not a surprise for
// whoever next opens a trace in ui.perfetto.dev.
//
// To regenerate after an *intentional* format change:
//   MSD_UPDATE_GOLDEN=1 ./obs_trace_golden_test
//
// Runs alone in its own binary: event state is process-wide, and a
// shared binary would leak other tests' lanes into the export.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/events.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/parallel.h"

#ifndef MSD_TRACE_GOLDEN_FILE
#error "MSD_TRACE_GOLDEN_FILE must point at the checked-in golden trace"
#endif

namespace msd {
namespace {

/// Rebuilds `doc` with every "ts" zeroed and the "run" manifest replaced
/// by a placeholder — the two machine-dependent parts of the document.
obs::Json scrubbed(const obs::Json& doc) {
  obs::Json out = obs::Json::object();
  for (const auto& [key, value] : doc.members()) {
    if (key == "traceEvents") {
      obs::Json events = obs::Json::array();
      for (std::size_t i = 0; i < value.size(); ++i) {
        obs::Json event = obs::Json::object();
        for (const auto& [eventKey, eventValue] : value.at(i).members()) {
          event.set(eventKey, eventKey == "ts" ? obs::Json(0.0) : eventValue);
        }
        events.push(std::move(event));
      }
      out.set(key, std::move(events));
    } else if (key == "otherData") {
      obs::Json other = obs::Json::object();
      for (const auto& [otherKey, otherValue] : value.members()) {
        other.set(otherKey, otherKey == "run" ? obs::Json("<scrubbed>")
                                              : otherValue);
      }
      out.set(key, std::move(other));
    } else {
      out.set(key, value);
    }
  }
  return out;
}

std::string buildTrace() {
  setThreadCount(1);
  obs::resetAll();
  obs::setThreadLabel("main");
  obs::setEventRecording(true);

  {
    MSD_TRACE_SCOPE("golden.outer");
    for (int i = 0; i < 2; ++i) {
      MSD_TRACE_SCOPE("golden.inner");
    }
  }
  { MSD_TRACE_SCOPE("golden.tail"); }

  obs::setEventRecording(false);
  const std::string text = scrubbed(obs::traceEventsJson()).dump(2) + "\n";
  obs::resetAll();
  return text;
}

TEST(ObsTraceGoldenTest, ExportMatchesCheckedInGolden) {
  const std::string trace = buildTrace();

  if (std::getenv("MSD_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(MSD_TRACE_GOLDEN_FILE, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << MSD_TRACE_GOLDEN_FILE;
    out << trace;
    GTEST_SKIP() << "golden file regenerated at " << MSD_TRACE_GOLDEN_FILE;
  }

  std::ifstream in(MSD_TRACE_GOLDEN_FILE);
  ASSERT_TRUE(in.good())
      << "missing golden file " << MSD_TRACE_GOLDEN_FILE
      << " — regenerate with MSD_UPDATE_GOLDEN=1 ./obs_trace_golden_test";
  std::ostringstream golden;
  golden << in.rdbuf();

  std::istringstream actualLines(trace);
  std::istringstream goldenLines(golden.str());
  std::string actualLine, goldenLine;
  std::size_t lineNumber = 0;
  while (std::getline(goldenLines, goldenLine)) {
    ++lineNumber;
    ASSERT_TRUE(std::getline(actualLines, actualLine))
        << "trace ends early at golden line " << lineNumber;
    ASSERT_EQ(actualLine, goldenLine)
        << "first divergence at line " << lineNumber;
  }
  EXPECT_FALSE(std::getline(actualLines, actualLine))
      << "trace has extra lines beyond the golden file";
}

}  // namespace
}  // namespace msd
