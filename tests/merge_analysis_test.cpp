#include "analysis/merge_analysis.h"

#include <gtest/gtest.h>

#include "gen/trace_generator.h"

namespace msd {
namespace {

/// Hand-built merge scenario. Merge at day 10. Main users 0-2, second
/// users 3-5 (imported at day 10), post-merge user 6 (day 12).
EventStream handMergeStream() {
  EventStream stream;
  stream.appendNodeJoin(0.0, Origin::kMain);   // 0
  stream.appendNodeJoin(0.0, Origin::kMain);   // 1
  stream.appendNodeJoin(1.0, Origin::kMain);   // 2
  stream.appendEdgeAdd(2.0, 0, 1);             // pre-merge main edge
  stream.appendNodeJoin(10.0, Origin::kSecond);  // 3
  stream.appendNodeJoin(10.0, Origin::kSecond);  // 4
  stream.appendNodeJoin(10.0, Origin::kSecond);  // 5
  stream.appendEdgeAdd(10.0, 3, 4);            // imported second edge
  stream.appendEdgeAdd(11.2, 0, 3);            // external
  stream.appendEdgeAdd(11.8, 1, 2);            // internal main
  stream.appendNodeJoin(12.0, Origin::kPostMerge);  // 6
  stream.appendEdgeAdd(12.5, 6, 4);            // new-user edge (second side)
  stream.appendEdgeAdd(13.5, 4, 5);            // internal second
  stream.appendNodeJoin(20.0, Origin::kPostMerge);  // 7 (keeps trace long)
  stream.appendEdgeAdd(24.0, 6, 7);
  return stream;
}

MergeAnalysisConfig handConfig() {
  MergeAnalysisConfig config;
  config.mergeDay = 10.0;
  config.activityWindow = 4.0;
  config.distanceEvery = 2.0;
  config.distanceSamples = 10;
  return config;
}

TEST(MergeAnalysisTest, GroupSizesCounted) {
  const MergeAnalysisResult result =
      analyzeMerge(handMergeStream(), handConfig());
  EXPECT_EQ(result.mainUsers, 3u);
  EXPECT_EQ(result.secondUsers, 3u);
}

TEST(MergeAnalysisTest, EdgeClassesCountedPerDay) {
  const MergeAnalysisResult result =
      analyzeMerge(handMergeStream(), handConfig());
  // Relative day 0 (= absolute day 10): the imported internal edge is an
  // import artifact and must be excluded from activity accounting.
  EXPECT_DOUBLE_EQ(result.edgesInternal.valueAtOrBefore(0.0), 0.0);
  // Relative day 1: one external (0-3) and one internal (1-2).
  EXPECT_DOUBLE_EQ(result.edgesExternal.valueAtOrBefore(1.0), 1.0);
  EXPECT_DOUBLE_EQ(result.edgesInternal.valueAtOrBefore(1.0), 1.0);
  // Relative day 2: one new-user edge (6-4).
  EXPECT_DOUBLE_EQ(result.edgesNew.valueAtOrBefore(2.0), 1.0);
  // Relative day 3: internal second edge (4-5).
  EXPECT_DOUBLE_EQ(result.edgesInternal.valueAtOrBefore(3.0), 1.0);
}

TEST(MergeAnalysisTest, RatiosComputedOnlyWhereDefined) {
  const MergeAnalysisResult result =
      analyzeMerge(handMergeStream(), handConfig());
  // External edges only on relative day 1 -> exactly one ratio point.
  ASSERT_EQ(result.intExtMain.size(), 1u);
  EXPECT_DOUBLE_EQ(result.intExtMain.timeAt(0), 1.0);
  EXPECT_DOUBLE_EQ(result.intExtMain.valueAt(0), 1.0);  // 1 internal main / 1 ext
  ASSERT_EQ(result.intExtSecond.size(), 1u);
  EXPECT_DOUBLE_EQ(result.intExtSecond.valueAt(0), 0.0);  // none that day
}

TEST(MergeAnalysisTest, ActivityWindowSemantics) {
  const MergeAnalysisResult result =
      analyzeMerge(handMergeStream(), handConfig());
  // Window = 4 days. At rel day 0, active main users: 0 (ext edge d1),
  // 1 and 2 (internal d1) -> 100%; second: 3,4 (internal d0), 5 (d3.5)
  // -> 100%.
  EXPECT_DOUBLE_EQ(result.activeMain.all.valueAt(0), 100.0);
  EXPECT_DOUBLE_EQ(result.activeSecond.all.valueAt(0), 100.0);
  EXPECT_DOUBLE_EQ(result.day0InactiveMain, 0.0);
  // Class-specific: only user 0 created an external edge.
  EXPECT_NEAR(result.activeMain.external.valueAt(0), 100.0 / 3.0, 1e-9);
  // New-user edges: only second user 4 within [0, 4).
  EXPECT_NEAR(result.activeSecond.newUsers.valueAt(0), 100.0 / 3.0, 1e-9);
}

TEST(MergeAnalysisTest, DistanceSeriesReflectsConnectivity) {
  const MergeAnalysisResult result =
      analyzeMerge(handMergeStream(), handConfig());
  ASSERT_FALSE(result.distanceSecondToMain.empty());
  // After the external edge lands (day 1+), distances must be finite and
  // small; node 3 is 1 hop from main, 4 is 2 hops (via 3).
  const double late = result.distanceSecondToMain.lastValue();
  EXPECT_GE(late, 1.0);
  EXPECT_LE(late, 3.0);
}

TEST(MergeAnalysisTest, EmptyOrPreMergeOnlyStreamIsSafe) {
  EventStream stream;
  stream.appendNodeJoin(0.0);
  const MergeAnalysisResult result = analyzeMerge(stream, handConfig());
  EXPECT_EQ(result.mainUsers, 0u);
  EXPECT_TRUE(result.edgesNew.empty());
}

// --- Generated-trace shape checks (the paper's Sec 5 claims) ------------

class GeneratedMergeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TraceGenerator generator(GeneratorConfig::tiny(2));
    stream_ = new EventStream(generator.generate());
    MergeAnalysisConfig config;
    config.mergeDay = 60.0;  // tiny preset merges at day 60
    config.activityWindow = 15.0;
    config.distanceEvery = 2.0;
    config.distanceSamples = 60;
    result_ = new MergeAnalysisResult(analyzeMerge(*stream_, config));
  }
  static void TearDownTestSuite() {
    delete stream_;
    delete result_;
    stream_ = nullptr;
    result_ = nullptr;
  }
  static EventStream* stream_;
  static MergeAnalysisResult* result_;
};

EventStream* GeneratedMergeTest::stream_ = nullptr;
MergeAnalysisResult* GeneratedMergeTest::result_ = nullptr;

TEST_F(GeneratedMergeTest, DuplicateFractionsDetected) {
  // tiny config: 11% main / 28% second duplicates. Day-0 inactive share
  // should reflect that ordering with slack for sampling noise.
  EXPECT_GT(result_->day0InactiveSecond, result_->day0InactiveMain);
  EXPECT_GT(result_->day0InactiveMain, 0.02);
  EXPECT_LT(result_->day0InactiveSecond, 0.65);
}

TEST_F(GeneratedMergeTest, ActivityDeclinesOverTime) {
  const TimeSeries& all = result_->activeMain.all;
  ASSERT_GT(all.size(), 5u);
  EXPECT_GT(all.valueAt(0), all.lastValue());
}

TEST_F(GeneratedMergeTest, NewEdgesEventuallyDominate) {
  // The paper: edges to new users overtake internal and external within
  // days. Compare totals in the last third of the post-merge window.
  double lateNew = 0.0, lateInternal = 0.0, lateExternal = 0.0;
  const double start = 2.0 * result_->edgesNew.lastValue();  // unused guard
  (void)start;
  const std::size_t n = result_->edgesNew.size();
  for (std::size_t i = 2 * n / 3; i < n; ++i) {
    lateNew += result_->edgesNew.valueAt(i);
    lateInternal += result_->edgesInternal.valueAtOrBefore(
        result_->edgesNew.timeAt(i));
    lateExternal += result_->edgesExternal.valueAtOrBefore(
        result_->edgesNew.timeAt(i));
  }
  EXPECT_GT(lateNew, lateInternal);
  EXPECT_GT(lateNew, lateExternal);
}

TEST_F(GeneratedMergeTest, CrossOsnDistanceShrinks) {
  const TimeSeries& distance = result_->distanceSecondToMain;
  ASSERT_GE(distance.size(), 4u);
  const double early = distance.valueAt(0);
  const double late = distance.lastValue();
  EXPECT_LT(late, early);
  EXPECT_LT(late, 2.5);  // well-connected whole, paper Fig 9(c)
}

TEST_F(GeneratedMergeTest, PercentagesWithinBounds) {
  for (const TimeSeries* series :
       {&result_->activeMain.all, &result_->activeMain.newUsers,
        &result_->activeMain.internal, &result_->activeMain.external,
        &result_->activeSecond.all, &result_->activeSecond.newUsers,
        &result_->activeSecond.internal, &result_->activeSecond.external}) {
    for (std::size_t i = 0; i < series->size(); ++i) {
      EXPECT_GE(series->valueAt(i), 0.0);
      EXPECT_LE(series->valueAt(i), 100.0 + 1e-9);
    }
  }
}

}  // namespace
}  // namespace msd
