#include "graph/event_stream.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace msd {
namespace {

TEST(EventStreamTest, AppendNodeJoinAssignsDenseIds) {
  EventStream stream;
  EXPECT_EQ(stream.appendNodeJoin(0.0), 0u);
  EXPECT_EQ(stream.appendNodeJoin(0.5), 1u);
  EXPECT_EQ(stream.appendNodeJoin(1.0, Origin::kSecond, 7), 2u);
  EXPECT_EQ(stream.nodeCount(), 3u);
  EXPECT_EQ(stream.edgeCount(), 0u);
  EXPECT_EQ(stream.at(2).origin, Origin::kSecond);
  EXPECT_EQ(stream.at(2).group, 7u);
}

TEST(EventStreamTest, EdgeRequiresExistingNodes) {
  EventStream stream;
  stream.appendNodeJoin(0.0);
  EXPECT_THROW(stream.appendEdgeAdd(1.0, 0, 1), std::invalid_argument);
  stream.appendNodeJoin(0.5);
  stream.appendEdgeAdd(1.0, 0, 1);
  EXPECT_EQ(stream.edgeCount(), 1u);
}

TEST(EventStreamTest, RejectsTimeRegression) {
  EventStream stream;
  stream.appendNodeJoin(5.0);
  EXPECT_THROW(stream.appendNodeJoin(4.0), std::invalid_argument);
}

TEST(EventStreamTest, AllowsEqualTimestamps) {
  EventStream stream;
  stream.appendNodeJoin(1.0);
  stream.appendNodeJoin(1.0);
  stream.appendEdgeAdd(1.0, 0, 1);
  EXPECT_EQ(stream.size(), 3u);
}

TEST(EventStreamTest, RejectsSelfLoop) {
  EventStream stream;
  stream.appendNodeJoin(0.0);
  EXPECT_THROW(stream.appendEdgeAdd(1.0, 0, 0), std::invalid_argument);
}

TEST(EventStreamTest, RejectsNonDenseNodeIds) {
  EventStream stream;
  EXPECT_THROW(stream.append(Event::nodeJoin(0.0, 5)), std::invalid_argument);
}

TEST(EventStreamTest, LastTimeTracksAppends) {
  EventStream stream;
  EXPECT_DOUBLE_EQ(stream.lastTime(), 0.0);
  stream.appendNodeJoin(2.5);
  EXPECT_DOUBLE_EQ(stream.lastTime(), 2.5);
}

TEST(EventStreamTest, ValidatePassesOnWellFormedStream) {
  EventStream stream;
  stream.appendNodeJoin(0.0);
  stream.appendNodeJoin(0.1);
  stream.appendEdgeAdd(0.2, 0, 1);
  EXPECT_NO_THROW(stream.validate());
}

TEST(EventStreamTest, FirstIndexAtOrAfter) {
  EventStream stream;
  stream.appendNodeJoin(0.0);
  stream.appendNodeJoin(1.0);
  stream.appendEdgeAdd(2.0, 0, 1);
  EXPECT_EQ(stream.firstIndexAtOrAfter(-1.0), 0u);
  EXPECT_EQ(stream.firstIndexAtOrAfter(0.5), 1u);
  EXPECT_EQ(stream.firstIndexAtOrAfter(2.0), 2u);
  EXPECT_EQ(stream.firstIndexAtOrAfter(2.5), 3u);
}

TEST(EventStreamTest, AtRejectsOutOfRange) {
  EventStream stream;
  EXPECT_THROW((void)stream.at(0), std::invalid_argument);
}

}  // namespace
}  // namespace msd
