#include "analysis/user_activity.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace msd {
namespace {

constexpr std::uint32_t kNone = 0xffffffffu;

/// Hand-built scenario: nodes 0-2 in community 0 (size 3 -> band A),
/// nodes 3-6 in community 1 (size 4 -> band B), nodes 7-8 outside.
EventStream handStream() {
  EventStream stream;
  for (int i = 0; i < 9; ++i) stream.appendNodeJoin(0.0);
  // Community 0: internal edges at t=1,2 plus an external edge.
  stream.appendEdgeAdd(1.0, 0, 1);
  stream.appendEdgeAdd(2.0, 1, 2);
  stream.appendEdgeAdd(3.0, 0, 7);  // external for node 0
  // Community 1: fully internal clique over t=4..9.
  stream.appendEdgeAdd(4.0, 3, 4);
  stream.appendEdgeAdd(5.0, 3, 5);
  stream.appendEdgeAdd(6.0, 3, 6);
  stream.appendEdgeAdd(7.0, 4, 5);
  stream.appendEdgeAdd(8.0, 4, 6);
  stream.appendEdgeAdd(9.0, 5, 6);
  // Outsiders 7-8 link to each other late.
  stream.appendEdgeAdd(20.0, 7, 8);
  return stream;
}

UserActivityResult run() {
  std::vector<std::uint32_t> membership = {0, 0, 0, 1, 1, 1, 1, kNone, kNone};
  std::vector<std::size_t> sizes = {3, 4};
  UserActivityConfig config;
  config.bands = {{3, 4, "three"}, {4, 0, "four-plus"}};
  return analyzeUserActivity(handStream(), membership, sizes, config);
}

TEST(UserActivityTest, CohortSizes) {
  const UserActivityResult result = run();
  EXPECT_EQ(result.allCommunity.users, 7u);
  EXPECT_EQ(result.nonCommunity.users, 2u);
  ASSERT_EQ(result.byBand.size(), 2u);
  EXPECT_EQ(result.byBand[0].users, 3u);  // community 0 members
  EXPECT_EQ(result.byBand[1].users, 4u);  // community 1 members
}

TEST(UserActivityTest, InDegreeRatioExact) {
  const UserActivityResult result = run();
  // Node 0: 1 of 2 edges internal; nodes 1,2: all internal; community 1:
  // all internal. Mean for band "three" = (1/2 + 1 + 1) / 3.
  EXPECT_NEAR(result.byBand[0].meanInDegreeRatio, (0.5 + 2.0) / 3.0, 1e-12);
  EXPECT_NEAR(result.byBand[1].meanInDegreeRatio, 1.0, 1e-12);
}

TEST(UserActivityTest, LifetimeExact) {
  const UserActivityResult result = run();
  // Node 7 lifetime: 20 - 0; node 8: 20 - 0. Non-community mean = 20.
  EXPECT_NEAR(result.nonCommunity.meanLifetime, 20.0, 1e-12);
  // Community 1 members: last edges at t=7..9 -> lifetimes 7..9.
  EXPECT_GT(result.byBand[1].meanLifetime, 6.9);
  EXPECT_LT(result.byBand[1].meanLifetime, 9.1);
}

TEST(UserActivityTest, InterArrivalGapsCollected) {
  const UserActivityResult result = run();
  // Node 3 gaps: 1,1; node 4 gaps: 3,1; node 5: 2,2; node 6: 2,1.
  // All community-1 gap values are in [1,3].
  for (const CdfPoint& point : result.byBand[1].interArrivalCdf) {
    EXPECT_GE(point.value, 1.0);
    EXPECT_LE(point.value, 3.0);
  }
  // Non-community gaps: node 7 has edges at t=3 and t=20 -> one gap of
  // 17 days; node 8 has a single edge -> none.
  ASSERT_EQ(result.nonCommunity.interArrivalCdf.size(), 1u);
  EXPECT_DOUBLE_EQ(result.nonCommunity.interArrivalCdf[0].value, 17.0);
}

TEST(UserActivityTest, UsersWithNoEdgesExcluded) {
  EventStream stream;
  stream.appendNodeJoin(0.0);
  stream.appendNodeJoin(0.0);
  stream.appendEdgeAdd(1.0, 0, 1);
  stream.appendNodeJoin(5.0);  // never connects
  std::vector<std::uint32_t> membership = {kNone, kNone, kNone};
  const UserActivityResult result =
      analyzeUserActivity(stream, membership, {});
  EXPECT_EQ(result.nonCommunity.users, 2u);
}

TEST(UserActivityTest, MembershipTooShortThrows) {
  EventStream stream;
  stream.appendNodeJoin(0.0);
  std::vector<std::uint32_t> membership;  // too short
  EXPECT_THROW((void)analyzeUserActivity(stream, membership, {}),
               std::invalid_argument);
}

TEST(UserActivityTest, UnknownCommunitySizeFallsOutsideBands) {
  EventStream stream;
  stream.appendNodeJoin(0.0);
  stream.appendNodeJoin(0.0);
  stream.appendEdgeAdd(1.0, 0, 1);
  // Membership points at community 5 but the size table is empty ->
  // size 0 -> no band matches, still counted in allCommunity.
  std::vector<std::uint32_t> membership = {5, 5};
  UserActivityConfig config;
  config.bands = {{10, 0, "10+"}};
  const UserActivityResult result =
      analyzeUserActivity(stream, membership, {}, config);
  EXPECT_EQ(result.allCommunity.users, 2u);
  EXPECT_EQ(result.byBand[0].users, 0u);
}

}  // namespace
}  // namespace msd
