// Golden lock for the observability JSON report (schema "msd-obs-v1"):
// a fixed-seed tiny pipeline runs single-threaded, and the timing-free
// snapshot — every counter value, gauge, and the scope-tree structure
// with call counts — must match tests/golden/obs_report.golden byte for
// byte. This pins the report schema AND the instrumentation-site
// placement: silently dropping a counter or re-parenting a scope is a
// diff, not a surprise.
//
// To regenerate after an *intentional* change:
//   MSD_UPDATE_GOLDEN=1 ./obs_json_golden_test
// then review the diff like any other code change.
//
// This test runs alone in its own binary: the registry is process-wide,
// so sharing a binary with other tests would leak their counters into
// the snapshot.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/community_analysis.h"
#include "analysis/edge_dynamics.h"
#include "gen/trace_generator.h"
#include "obs/registry.h"
#include "util/parallel.h"

#ifndef MSD_OBS_GOLDEN_FILE
#error "MSD_OBS_GOLDEN_FILE must point at the checked-in golden report"
#endif

namespace msd {
namespace {

/// Runs a deterministic slice of the pipeline — generation, the Fig 2
/// edge-dynamics replay, and a coarse community analysis — at one
/// thread, then snapshots the registry without timings.
std::string buildReport() {
  setThreadCount(1);
  obs::resetAll();

  TraceGenerator generator(GeneratorConfig::tiny(1));
  const EventStream stream = generator.generate();
  analyzeEdgeDynamics(stream);

  CommunityAnalysisConfig config;
  config.startDay = 15.0;
  config.snapshotStep = 10.0;
  config.tracker.minCommunitySize = 5;
  analyzeCommunities(stream, config);

  // Manifest excluded: build type/flags/git vary by configuration, and
  // the golden pins the instrumentation layout, not the build identity.
  return obs::snapshotString(
      {.includeTimings = false, .includeManifest = false});
}

TEST(ObsJsonGoldenTest, ReportMatchesCheckedInGolden) {
  const std::string report = buildReport();

  if (std::getenv("MSD_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(MSD_OBS_GOLDEN_FILE, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << MSD_OBS_GOLDEN_FILE;
    out << report;
    GTEST_SKIP() << "golden file regenerated at " << MSD_OBS_GOLDEN_FILE;
  }

  std::ifstream in(MSD_OBS_GOLDEN_FILE);
  ASSERT_TRUE(in.good())
      << "missing golden file " << MSD_OBS_GOLDEN_FILE
      << " — regenerate with MSD_UPDATE_GOLDEN=1 ./obs_json_golden_test";
  std::ostringstream golden;
  golden << in.rdbuf();

  std::istringstream actualLines(report);
  std::istringstream goldenLines(golden.str());
  std::string actualLine, goldenLine;
  std::size_t lineNumber = 0;
  while (std::getline(goldenLines, goldenLine)) {
    ++lineNumber;
    ASSERT_TRUE(std::getline(actualLines, actualLine))
        << "report ends early at golden line " << lineNumber;
    ASSERT_EQ(actualLine, goldenLine)
        << "first divergence at line " << lineNumber;
  }
  EXPECT_FALSE(std::getline(actualLines, actualLine))
      << "report has extra lines beyond the golden file";
}

}  // namespace
}  // namespace msd
