// Thread-count determinism lock for the three analysis pipelines the
// figure benches record: edge dynamics (Fig 2), preferential attachment
// (Fig 3), and the merge analysis (Figs 8-9). Each result is serialized
// to hexfloat text and must be byte-identical at 1, 2, and 8 threads —
// the repo's deterministic-parallelism contract (fixed grain-based
// chunking, reductions combined in chunk order) made observable.
// Runs under the ThreadSanitizer preset via `ctest -L tsan`.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/edge_dynamics.h"
#include "analysis/merge_analysis.h"
#include "analysis/pref_attach.h"
#include "gen/trace_generator.h"
#include "util/parallel.h"

namespace msd {
namespace {

std::string hexDouble(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

void appendSeries(std::ostringstream& out, const TimeSeries& series) {
  out << "series " << series.name() << " " << series.size() << "\n";
  for (std::size_t i = 0; i < series.size(); ++i) {
    out << "  " << hexDouble(series.timeAt(i)) << " "
        << hexDouble(series.valueAt(i)) << "\n";
  }
}

void appendFit(std::ostringstream& out, const PowerLawFit& fit) {
  out << "fit " << hexDouble(fit.alpha) << " " << hexDouble(fit.prefactor)
      << " " << hexDouble(fit.mseLinear) << " " << hexDouble(fit.mseLog)
      << "\n";
}

std::string serialize(const EdgeDynamics& result) {
  std::ostringstream out;
  out << "edge-dynamics buckets " << result.interArrival.size() << "\n";
  for (const InterArrivalBucket& bucket : result.interArrival) {
    out << "bucket " << bucket.name << " " << hexDouble(bucket.maxAgeDays)
        << " samples " << bucket.samples << "\n";
    appendFit(out, bucket.fit);
    for (const DensityBin& bin : bucket.pdf) {
      out << "  " << hexDouble(bin.center) << " " << hexDouble(bin.density)
          << " " << bin.count << "\n";
    }
  }
  out << "lifetime-fractions " << result.lifetimeFractions.size() << "\n";
  for (double fraction : result.lifetimeFractions) {
    out << "  " << hexDouble(fraction) << "\n";
  }
  appendSeries(out, result.minAge1);
  appendSeries(out, result.minAge10);
  appendSeries(out, result.minAge30);
  return out.str();
}

void appendSnapshot(std::ostringstream& out, const PeSnapshot& snapshot) {
  out << "snapshot at " << snapshot.atEdges << " points "
      << snapshot.points.size() << "\n";
  appendFit(out, snapshot.fit);
  for (const PePoint& point : snapshot.points) {
    out << "  " << hexDouble(point.degree) << " "
        << hexDouble(point.probability) << " " << hexDouble(point.samples)
        << "\n";
  }
}

std::string serialize(const PrefAttachResult& result) {
  std::ostringstream out;
  out << "pref-attach\n";
  appendSeries(out, result.alphaHigher);
  appendSeries(out, result.alphaRandom);
  appendSeries(out, result.mseHigher);
  appendSeries(out, result.mseRandom);
  appendSnapshot(out, result.snapshotHigher);
  appendSnapshot(out, result.snapshotRandom);
  out << "poly-higher";
  for (double c : result.polynomialHigher) out << " " << hexDouble(c);
  out << "\npoly-random";
  for (double c : result.polynomialRandom) out << " " << hexDouble(c);
  out << "\n";
  return out.str();
}

void appendActive(std::ostringstream& out, const ActiveUserSeries& series) {
  appendSeries(out, series.all);
  appendSeries(out, series.newUsers);
  appendSeries(out, series.internal);
  appendSeries(out, series.external);
}

std::string serialize(const MergeAnalysisResult& result) {
  std::ostringstream out;
  out << "merge-analysis main " << result.mainUsers << " second "
      << result.secondUsers << "\n";
  out << "day0-inactive " << hexDouble(result.day0InactiveMain) << " "
      << hexDouble(result.day0InactiveSecond) << "\n";
  appendActive(out, result.activeMain);
  appendActive(out, result.activeSecond);
  appendSeries(out, result.edgesNew);
  appendSeries(out, result.edgesInternal);
  appendSeries(out, result.edgesExternal);
  appendSeries(out, result.intExtMain);
  appendSeries(out, result.intExtSecond);
  appendSeries(out, result.intExtBoth);
  appendSeries(out, result.newExtMain);
  appendSeries(out, result.newExtSecond);
  appendSeries(out, result.newExtBoth);
  appendSeries(out, result.distanceSecondToMain);
  appendSeries(out, result.distanceMainToSecond);
  return out.str();
}

/// Runs `analysis` at 1, 2, and 8 threads and checks the serialized
/// results are byte-identical, reporting the first divergent line.
template <typename Analysis>
void expectThreadCountInvariant(const EventStream& stream,
                                Analysis&& analysis, const char* label) {
  const std::size_t saved = threadCount();
  std::vector<std::pair<std::size_t, std::string>> runs;
  for (std::size_t threads : {1u, 2u, 8u}) {
    setThreadCount(threads);
    runs.emplace_back(threads, analysis(stream));
  }
  setThreadCount(saved);

  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].second == runs[0].second) continue;
    std::istringstream baseline(runs[0].second);
    std::istringstream other(runs[i].second);
    std::string baselineLine, otherLine;
    std::size_t lineNumber = 0;
    while (std::getline(baseline, baselineLine)) {
      ++lineNumber;
      ASSERT_TRUE(std::getline(other, otherLine))
          << label << ": " << runs[i].first
          << "-thread output ends early at line " << lineNumber;
      ASSERT_EQ(otherLine, baselineLine)
          << label << ": first divergence between 1 and " << runs[i].first
          << " threads at line " << lineNumber;
    }
    FAIL() << label << ": " << runs[i].first
           << "-thread output has extra lines";
  }
}

EventStream tinyTrace() {
  TraceGenerator generator(GeneratorConfig::tiny(1));
  return generator.generate();
}

TEST(PipelineDeterminismTest, EdgeDynamicsIsThreadCountInvariant) {
  const EventStream stream = tinyTrace();
  expectThreadCountInvariant(
      stream,
      [](const EventStream& trace) {
        return serialize(analyzeEdgeDynamics(trace));
      },
      "edge_dynamics");
}

TEST(PipelineDeterminismTest, PrefAttachIsThreadCountInvariant) {
  const EventStream stream = tinyTrace();
  PrefAttachConfig config;
  config.fitEveryEdges = 2000;
  config.startEdges = 1000;
  expectThreadCountInvariant(
      stream,
      [&config](const EventStream& trace) {
        return serialize(analyzePreferentialAttachment(trace, config));
      },
      "pref_attach");
}

TEST(PipelineDeterminismTest, MergeAnalysisIsThreadCountInvariant) {
  const EventStream stream = tinyTrace();
  MergeAnalysisConfig config;
  config.mergeDay = 60.0;  // GeneratorConfig::tiny merges at day 60
  config.distanceEvery = 8.0;
  config.distanceSamples = 64;
  expectThreadCountInvariant(
      stream,
      [&config](const EventStream& trace) {
        return serialize(analyzeMerge(trace, config));
      },
      "merge_analysis");
}

}  // namespace
}  // namespace msd
