#include "graph/stream_ops.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "gen/trace_generator.h"

namespace msd {
namespace {

EventStream demo() {
  EventStream stream;
  stream.appendNodeJoin(0.0, Origin::kMain, 1);    // 0
  stream.appendNodeJoin(1.0, Origin::kMain, 1);    // 1
  stream.appendEdgeAdd(2.0, 0, 1);
  stream.appendNodeJoin(5.0, Origin::kSecond, 2);  // 2
  stream.appendEdgeAdd(6.0, 1, 2);
  stream.appendNodeJoin(8.0, Origin::kPostMerge, 1);  // 3
  stream.appendEdgeAdd(9.0, 2, 3);
  stream.appendEdgeAdd(10.0, 0, 3);
  return stream;
}

TEST(StreamOpsTest, FilterByOriginKeepsInternalEdgesOnly) {
  const EventStream filtered =
      stream_ops::filterByOrigin(demo(), Origin::kMain);
  EXPECT_NO_THROW(filtered.validate());
  EXPECT_EQ(filtered.nodeCount(), 2u);
  EXPECT_EQ(filtered.edgeCount(), 1u);  // only 0-1 survives
  EXPECT_DOUBLE_EQ(filtered.at(2).time, 2.0);
}

TEST(StreamOpsTest, FilterNodesByPredicate) {
  const EventStream filtered = stream_ops::filterNodes(
      demo(), [](const Event& e) { return e.group == 1; });
  // Nodes 0, 1, 3 kept; edges 0-1 and 0-3 survive; 1-2 and 2-3 dropped.
  EXPECT_EQ(filtered.nodeCount(), 3u);
  EXPECT_EQ(filtered.edgeCount(), 2u);
}

TEST(StreamOpsTest, SliceByTimeKeepsWindowEdgesAndEndpoints) {
  // Window [5, 9.5): contains join of nodes 2,3 and edges at 6.0, 9.0.
  const EventStream slice = stream_ops::sliceByTime(demo(), 5.0, 9.5);
  EXPECT_NO_THROW(slice.validate());
  // Node 1 (pre-window) kept as endpoint of edge 1-2; node 0 is not an
  // endpoint of any in-window edge and is dropped.
  EXPECT_EQ(slice.nodeCount(), 3u);
  EXPECT_EQ(slice.edgeCount(), 2u);
  // Pre-window endpoints are re-stamped at the window start.
  EXPECT_DOUBLE_EQ(slice.at(0).time, 5.0);
}

TEST(StreamOpsTest, SliceDropsPreWindowEdges) {
  const EventStream slice = stream_ops::sliceByTime(demo(), 5.0, 100.0);
  // Edge 0-1 at t=2 is outside the window even though both endpoints
  // survive (node 0 via edge 0-3, node 1 via edge 1-2).
  EXPECT_EQ(slice.edgeCount(), 3u);
}

TEST(StreamOpsTest, SliceRejectsInvertedWindow) {
  EXPECT_THROW((void)stream_ops::sliceByTime(demo(), 5.0, 1.0),
               std::invalid_argument);
}

TEST(StreamOpsTest, RebaseShiftsToZero) {
  EventStream stream;
  stream.appendNodeJoin(10.0);
  stream.appendNodeJoin(12.0);
  stream.appendEdgeAdd(15.0, 0, 1);
  const EventStream rebased = stream_ops::rebaseTime(stream);
  EXPECT_DOUBLE_EQ(rebased.at(0).time, 0.0);
  EXPECT_DOUBLE_EQ(rebased.at(2).time, 5.0);
  EXPECT_NO_THROW(rebased.validate());
}

TEST(StreamOpsTest, RebaseEmptyIsEmpty) {
  EXPECT_TRUE(stream_ops::rebaseTime(EventStream{}).empty());
}

TEST(StreamOpsTest, GeneratedTraceOriginSplitRoundTrips) {
  TraceGenerator generator(GeneratorConfig::tiny(6));
  const EventStream trace = generator.generate();
  std::size_t mainNodes = 0, secondNodes = 0, postNodes = 0;
  for (const Event& e : trace.events()) {
    if (e.kind != EventKind::kNodeJoin) continue;
    if (e.origin == Origin::kMain) ++mainNodes;
    if (e.origin == Origin::kSecond) ++secondNodes;
    if (e.origin == Origin::kPostMerge) ++postNodes;
  }
  const EventStream main = stream_ops::filterByOrigin(trace, Origin::kMain);
  const EventStream second =
      stream_ops::filterByOrigin(trace, Origin::kSecond);
  const EventStream post =
      stream_ops::filterByOrigin(trace, Origin::kPostMerge);
  EXPECT_EQ(main.nodeCount(), mainNodes);
  EXPECT_EQ(second.nodeCount(), secondNodes);
  EXPECT_EQ(post.nodeCount(), postNodes);
  EXPECT_NO_THROW(main.validate());
  EXPECT_NO_THROW(second.validate());
  EXPECT_NO_THROW(post.validate());
  // The three internal edge sets cannot exceed the whole.
  EXPECT_LE(main.edgeCount() + second.edgeCount() + post.edgeCount(),
            trace.edgeCount());
}

TEST(StreamOpsTest, SliceOfGeneratedTraceIsValid) {
  TraceGenerator generator(GeneratorConfig::tiny(7));
  const EventStream trace = generator.generate();
  const EventStream slice = stream_ops::sliceByTime(trace, 30.0, 70.0);
  EXPECT_NO_THROW(slice.validate());
  EXPECT_GT(slice.nodeCount(), 0u);
  for (const Event& e : slice.events()) {
    EXPECT_GE(e.time, 30.0 - 1e-9);
    EXPECT_LT(e.time, 70.0);
  }
}

}  // namespace
}  // namespace msd
