// Boundary semantics of the merge-analysis activity windows: "active at
// integer day d" means the user participates in a post-merge edge with
// relative time in [d, d + window). Verified through analyzeMerge on
// hand-built streams.

#include <gtest/gtest.h>

#include "analysis/merge_analysis.h"

namespace msd {
namespace {

/// One main user pair and one second user pair; a single post-merge edge
/// at a configurable relative time drives the main users' activity.
EventStream streamWithEdgeAt(double relTime, double traceEnd = 40.0) {
  EventStream stream;
  stream.appendNodeJoin(0.0, Origin::kMain);
  stream.appendNodeJoin(0.0, Origin::kMain);
  stream.appendNodeJoin(10.0, Origin::kSecond);
  stream.appendNodeJoin(10.0, Origin::kSecond);
  stream.appendEdgeAdd(10.0 + relTime, 0, 1);
  // A trailing joiner keeps the trace long enough to measure.
  stream.appendNodeJoin(10.0 + traceEnd, Origin::kPostMerge);
  return stream;
}

MergeAnalysisConfig config(double window) {
  MergeAnalysisConfig c;
  c.mergeDay = 10.0;
  c.activityWindow = window;
  c.distanceSamples = 0;
  c.distanceEvery = 1e9;
  return c;
}

TEST(MergeWindowTest, EdgeInsideWindowCountsFromItsDayBackwards) {
  // Edge at rel 7.5 with window 5: active for integer days d with
  // d <= 7.5 < d+5, i.e. d in {3,4,5,6,7}.
  const MergeAnalysisResult result =
      analyzeMerge(streamWithEdgeAt(7.5), config(5.0));
  const TimeSeries& active = result.activeMain.all;
  ASSERT_GE(active.size(), 9u);
  EXPECT_DOUBLE_EQ(active.valueAt(2), 0.0);
  for (std::size_t d = 3; d <= 7; ++d) {
    EXPECT_DOUBLE_EQ(active.valueAt(d), 100.0) << "day " << d;
  }
  EXPECT_DOUBLE_EQ(active.valueAt(8), 0.0);
}

TEST(MergeWindowTest, MergeDayEdgeIsExcluded) {
  // Edge at rel 0.5 is an import-day artifact and must not register.
  const MergeAnalysisResult result =
      analyzeMerge(streamWithEdgeAt(0.5), config(5.0));
  for (std::size_t i = 0; i < result.activeMain.all.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.activeMain.all.valueAt(i), 0.0);
  }
  EXPECT_DOUBLE_EQ(result.day0InactiveMain, 1.0);
}

TEST(MergeWindowTest, Day1EdgeMakesDay0And1Active) {
  // Edge at rel 1.25 with window 5: active for d in {0,1} (and only
  // within the measurable range).
  const MergeAnalysisResult result =
      analyzeMerge(streamWithEdgeAt(1.25), config(5.0));
  EXPECT_DOUBLE_EQ(result.activeMain.all.valueAt(0), 100.0);
  EXPECT_DOUBLE_EQ(result.activeMain.all.valueAt(1), 100.0);
  EXPECT_DOUBLE_EQ(result.activeMain.all.valueAt(2), 0.0);
  EXPECT_DOUBLE_EQ(result.day0InactiveMain, 0.0);
}

TEST(MergeWindowTest, OverlappingEdgesCountUserOnce) {
  EventStream stream;
  stream.appendNodeJoin(0.0, Origin::kMain);
  stream.appendNodeJoin(0.0, Origin::kMain);
  stream.appendNodeJoin(5.0, Origin::kSecond);
  stream.appendNodeJoin(5.0, Origin::kSecond);
  // Two close edges by the same pair: windows overlap heavily.
  stream.appendEdgeAdd(7.0, 0, 1);
  stream.appendEdgeAdd(8.0, 0, 1);
  stream.appendNodeJoin(45.0, Origin::kPostMerge);
  MergeAnalysisConfig c = config(10.0);
  c.mergeDay = 5.0;
  const MergeAnalysisResult result = analyzeMerge(stream, c);
  // Percentages must never exceed 100 even with overlapping intervals.
  for (std::size_t i = 0; i < result.activeMain.all.size(); ++i) {
    EXPECT_LE(result.activeMain.all.valueAt(i), 100.0);
  }
  EXPECT_DOUBLE_EQ(result.activeMain.all.valueAt(0), 100.0);
}

TEST(MergeWindowTest, WindowLargerThanTailLimitsMeasurableDays) {
  // 40 post-merge days, window 30: measurable active days 0..10.
  const MergeAnalysisResult result =
      analyzeMerge(streamWithEdgeAt(2.0, 40.0), config(30.0));
  ASSERT_FALSE(result.activeMain.all.empty());
  EXPECT_LE(result.activeMain.all.timeAt(result.activeMain.all.size() - 1),
            10.0 + 1e-9);
}

TEST(MergeWindowTest, PostMergeOnlyUsersDoNotAppearInGroups) {
  const MergeAnalysisResult result =
      analyzeMerge(streamWithEdgeAt(3.0), config(5.0));
  EXPECT_EQ(result.mainUsers, 2u);
  EXPECT_EQ(result.secondUsers, 2u);
}

}  // namespace
}  // namespace msd
