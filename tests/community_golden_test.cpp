// Golden-file regression lock for the Fig 4-6 community numbers: a
// fixed-seed tiny trace's community summary — modularity series,
// lifecycle event counts, and the delta-sweep scores — is checked in at
// tests/golden/community_summary.golden and compared exactly (doubles
// serialized as hexfloats), so future refactors of Louvain or the
// tracker cannot silently drift the paper-figure outputs.
//
// To regenerate after an *intentional* behavior change:
//   MSD_UPDATE_GOLDEN=1 ./community_golden_test
// then review the diff like any other code change.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/community_analysis.h"
#include "gen/trace_generator.h"

#ifndef MSD_GOLDEN_FILE
#error "MSD_GOLDEN_FILE must point at the checked-in golden summary"
#endif

namespace msd {
namespace {

std::string hexDouble(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

void appendSeries(std::ostringstream& out, const TimeSeries& series) {
  out << "series " << series.name() << " " << series.size() << "\n";
  for (std::size_t i = 0; i < series.size(); ++i) {
    out << "  " << hexDouble(series.timeAt(i)) << " "
        << hexDouble(series.valueAt(i)) << "\n";
  }
}

/// Renders the full community summary of the fixed-seed trace. Every
/// number that feeds Fig 4-6 appears either directly or as a count.
std::string buildSummary() {
  TraceGenerator generator(GeneratorConfig::tiny(1));
  const EventStream stream = generator.generate();

  CommunityAnalysisConfig config;
  config.startDay = 15.0;
  config.snapshotStep = 3.0;
  config.tracker.minCommunitySize = 5;
  config.sizeDistributionDays = {50.0, 99.0};
  config.excludeBirthLo = 59.0;
  config.excludeBirthHi = 62.0;
  const CommunityAnalysisResult result = analyzeCommunities(stream, config);

  std::ostringstream out;
  out << "community-summary v1 trace=tiny(1)\n";
  appendSeries(out, result.modularity);
  appendSeries(out, result.communityCount);
  appendSeries(out, result.avgSimilarity);
  appendSeries(out, result.topCoverage);

  out << "size-distributions " << result.sizeDistributions.size() << "\n";
  for (const SizeDistribution& distribution : result.sizeDistributions) {
    out << "  day " << hexDouble(distribution.day);
    for (std::size_t size : distribution.sizes) out << " " << size;
    out << "\n";
  }

  out << "lifetimes " << result.lifetimes.size() << "\n";
  for (double lifetime : result.lifetimes) {
    out << "  " << hexDouble(lifetime) << "\n";
  }

  out << "merge-ratios " << result.mergeRatios.size() << "\n";
  for (const GroupSizeRatio& entry : result.mergeRatios) {
    out << "  " << hexDouble(entry.day) << " " << hexDouble(entry.ratio)
        << "\n";
  }
  out << "split-ratios " << result.splitRatios.size() << "\n";
  for (const GroupSizeRatio& entry : result.splitRatios) {
    out << "  " << hexDouble(entry.day) << " " << hexDouble(entry.ratio)
        << "\n";
  }

  std::size_t strongestTrue = 0;
  for (const auto& [day, strongest] : result.strongestTieOutcomes) {
    if (strongest) ++strongestTrue;
  }
  out << "strongest-tie " << result.strongestTieOutcomes.size() << " "
      << strongestTrue << "\n";

  std::size_t willMerge = 0;
  for (const MergeSample& sample : result.mergeSamples) {
    if (sample.willMerge) ++willMerge;
  }
  out << "merge-samples " << result.mergeSamples.size() << " " << willMerge
      << "\n";
  out << "final-communities " << result.finalCommunitySize.size() << "\n";

  // The paper's Sec 4.1 threshold sweep over a spread of candidates.
  CommunityAnalysisConfig sweepConfig = config;
  sweepConfig.snapshotStep = 6.0;
  sweepConfig.sizeDistributionDays = {};
  const DeltaSelection sweep =
      selectDelta(stream, {0.01, 0.04, 0.2}, sweepConfig);
  out << "delta-sweep " << sweep.scores.size() << " best "
      << hexDouble(sweep.best) << "\n";
  for (const DeltaScore& score : sweep.scores) {
    out << "  " << hexDouble(score.delta) << " "
        << hexDouble(score.meanModularity) << " "
        << hexDouble(score.meanSimilarity) << " " << hexDouble(score.balance)
        << "\n";
  }
  return out.str();
}

TEST(CommunityGoldenTest, SummaryMatchesCheckedInGolden) {
  const std::string summary = buildSummary();

  if (std::getenv("MSD_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(MSD_GOLDEN_FILE, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << MSD_GOLDEN_FILE;
    out << summary;
    GTEST_SKIP() << "golden file regenerated at " << MSD_GOLDEN_FILE;
  }

  std::ifstream in(MSD_GOLDEN_FILE);
  ASSERT_TRUE(in.good())
      << "missing golden file " << MSD_GOLDEN_FILE
      << " — regenerate with MSD_UPDATE_GOLDEN=1 ./community_golden_test";
  std::ostringstream golden;
  golden << in.rdbuf();

  // Compare line by line for a readable first-divergence message, then
  // whole-string to catch length differences.
  std::istringstream actualLines(summary);
  std::istringstream goldenLines(golden.str());
  std::string actualLine, goldenLine;
  std::size_t lineNumber = 0;
  while (std::getline(goldenLines, goldenLine)) {
    ++lineNumber;
    ASSERT_TRUE(std::getline(actualLines, actualLine))
        << "summary ends early at golden line " << lineNumber;
    ASSERT_EQ(actualLine, goldenLine) << "first divergence at line "
                                      << lineNumber;
  }
  EXPECT_FALSE(std::getline(actualLines, actualLine))
      << "summary has extra lines beyond the golden file";
}

}  // namespace
}  // namespace msd
