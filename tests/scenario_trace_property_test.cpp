// Trace-level invariants of every scenario preset: whatever regime the
// overrides dial in (bursts, churn, bots, repeated merges), the
// generated EventStream must satisfy the full stream contract —
// validate() passes, timestamps never decrease, no self-loops — replay
// identically through EventCursor windows, and serialize byte-
// identically at 1, 2, and 8 threads (the generator is a single
// explicitly-seeded walk; pool size must not leak into it).

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>

#include "gen/trace_generator.h"
#include "graph/event_stream.h"
#include "io/event_io.h"
#include "scenario/scenario.h"
#include "util/parallel.h"

namespace msd {
namespace {

/// Restores the configured thread count when a test exits.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(threadCount()) {}
  ~ThreadCountGuard() { setThreadCount(saved_); }

 private:
  std::size_t saved_;
};

EventStream generate(const scenario::ScenarioPreset& preset) {
  const GeneratorConfig config =
      scenario::configFor(preset, scenario::Scale::kTiny, 1);
  TraceGenerator generator(config);
  return generator.generate();
}

class ScenarioTraceTest
    : public ::testing::TestWithParam<const scenario::ScenarioPreset*> {};

TEST_P(ScenarioTraceTest, StreamPassesFullValidation) {
  const EventStream stream = generate(*GetParam());
  EXPECT_GT(stream.nodeCount(), 100u);
  EXPECT_GT(stream.edgeCount(), stream.nodeCount());
  EXPECT_NO_THROW(stream.validate());
}

TEST_P(ScenarioTraceTest, TimestampsNeverDecreaseAndNoSelfLoops) {
  const EventStream stream = generate(*GetParam());
  double last = 0.0;
  for (const Event& event : stream.events()) {
    ASSERT_GE(event.time, last);
    last = event.time;
    if (event.kind == EventKind::kEdgeAdd) {
      ASSERT_NE(event.u, event.v) << "self-loop at t=" << event.time;
    }
  }
}

TEST_P(ScenarioTraceTest, CursorReplayHandsOutEveryEventInOrder) {
  const EventStream stream = generate(*GetParam());
  EventCursor cursor(stream);
  std::size_t position = 0;
  for (double bound = 1.0; bound <= stream.lastTime() + 1.0; bound += 1.0) {
    for (const Event& event : cursor.takeUntil(bound)) {
      ASSERT_LT(event.time, bound);
      const Event& direct = stream.at(position);
      ASSERT_EQ(event.time, direct.time);
      ASSERT_EQ(static_cast<int>(event.kind), static_cast<int>(direct.kind));
      ASSERT_EQ(event.u, direct.u);
      ASSERT_EQ(event.v, direct.v);
      ++position;
    }
  }
  for (const Event& event : cursor.takeRemaining()) {
    const Event& direct = stream.at(position);
    ASSERT_EQ(event.time, direct.time);
    ++position;
  }
  EXPECT_EQ(position, stream.size());
  EXPECT_TRUE(cursor.exhausted());
}

TEST_P(ScenarioTraceTest, SerializesByteIdenticallyAcrossThreadCounts) {
  ThreadCountGuard guard;
  std::string reference;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    setThreadCount(threads);
    const EventStream stream = generate(*GetParam());
    std::stringstream buffer;
    event_io::saveBinary(stream, buffer);
    if (reference.empty()) {
      reference = buffer.str();
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(buffer.str(), reference)
          << GetParam()->name << " trace differs at " << threads
          << " threads";
    }
  }
}

std::vector<const scenario::ScenarioPreset*> presetPointers() {
  std::vector<const scenario::ScenarioPreset*> pointers;
  for (const scenario::ScenarioPreset& preset : scenario::allPresets()) {
    pointers.push_back(&preset);
  }
  return pointers;
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, ScenarioTraceTest, ::testing::ValuesIn(presetPointers()),
    [](const ::testing::TestParamInfo<const scenario::ScenarioPreset*>&
           info) {
      std::string name = info.param->name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace msd
