#include "community/tracker.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace msd {
namespace {

/// Builds a graph of `cliques` disjoint cliques of the given sizes, with
/// nodes numbered consecutively, and the matching partition.
struct CliqueWorld {
  Graph graph;
  Partition partition;
};

CliqueWorld makeCliques(const std::vector<std::size_t>& sizes,
                        std::size_t totalNodes = 0) {
  std::size_t needed = 0;
  for (std::size_t s : sizes) needed += s;
  const std::size_t n = std::max(needed, totalNodes);
  Graph g(n);
  std::vector<CommunityId> labels(n, kNoCommunity);
  NodeId next = 0;
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    const NodeId start = next;
    for (std::size_t i = 0; i < sizes[c]; ++i, ++next) {
      labels[next] = static_cast<CommunityId>(c);
      for (NodeId other = start; other < next; ++other) {
        g.addEdge(other, next);
      }
    }
  }
  return {std::move(g), Partition(std::move(labels))};
}

TEST(TrackerTest, FirstSnapshotBirthsEverything) {
  CommunityTracker tracker({.minCommunitySize = 3});
  const CliqueWorld world = makeCliques({4, 5});
  tracker.addSnapshot(0.0, world.graph, world.partition);
  EXPECT_EQ(tracker.communities().size(), 2u);
  EXPECT_EQ(tracker.events().size(), 2u);
  for (const LifecycleEvent& e : tracker.events()) {
    EXPECT_EQ(e.kind, LifecycleKind::kBirth);
  }
}

TEST(TrackerTest, SmallCommunitiesIgnored) {
  CommunityTracker tracker({.minCommunitySize = 5});
  const CliqueWorld world = makeCliques({4, 6});
  tracker.addSnapshot(0.0, world.graph, world.partition);
  EXPECT_EQ(tracker.communities().size(), 1u);
}

TEST(TrackerTest, StableCommunityContinues) {
  CommunityTracker tracker({.minCommunitySize = 3});
  const CliqueWorld world = makeCliques({5});
  tracker.addSnapshot(0.0, world.graph, world.partition);
  tracker.addSnapshot(3.0, world.graph, world.partition);
  ASSERT_EQ(tracker.communities().size(), 1u);
  const TrackedCommunity& community = tracker.communities()[0];
  EXPECT_EQ(community.history.size(), 2u);
  EXPECT_LT(community.deathDay, 0.0);
  EXPECT_DOUBLE_EQ(community.history[1].selfSimilarity, 1.0);
  // Transition similarity is perfect.
  ASSERT_EQ(tracker.transitionSimilarities().size(), 1u);
  EXPECT_DOUBLE_EQ(tracker.transitionSimilarities()[0].average, 1.0);
}

TEST(TrackerTest, MergeDetectedWithStrongestTie) {
  CommunityTracker tracker({.minCommunitySize = 3});
  // Snapshot 0: two cliques A(6) and B(4), with 2 cross edges (strong tie).
  CliqueWorld before = makeCliques({6, 4});
  before.graph.addEdge(0, 6);
  before.graph.addEdge(1, 7);
  tracker.addSnapshot(0.0, before.graph, before.partition);

  // Snapshot 1: same nodes, one community.
  std::vector<CommunityId> mergedLabels(10, 0);
  tracker.addSnapshot(3.0, before.graph, Partition(std::move(mergedLabels)));

  // B (smaller) merged into A; A continues.
  bool sawMerge = false;
  for (const LifecycleEvent& e : tracker.events()) {
    if (e.kind == LifecycleKind::kMergeDeath) {
      sawMerge = true;
      EXPECT_TRUE(e.strongestTie);  // A was B's only neighbor community
      EXPECT_DOUBLE_EQ(e.day, 3.0);
    }
  }
  EXPECT_TRUE(sawMerge);
  ASSERT_EQ(tracker.mergeSizeRatios().size(), 1u);
  EXPECT_NEAR(tracker.mergeSizeRatios()[0].ratio, 4.0 / 6.0, 1e-12);
  // The dead community records its lifetime.
  int dead = 0;
  for (const TrackedCommunity& c : tracker.communities()) {
    if (c.deathDay >= 0.0) {
      ++dead;
      EXPECT_EQ(c.endKind, LifecycleKind::kMergeDeath);
      EXPECT_DOUBLE_EQ(c.lifetime(), 3.0);
    }
  }
  EXPECT_EQ(dead, 1);
}

TEST(TrackerTest, StrongestTieFalseWhenMergingWithWeakNeighbor) {
  CommunityTracker tracker({.minCommunitySize = 3});
  // Three cliques A(6) B(4) C(5); B has 3 edges to C but only 1 to A.
  CliqueWorld before = makeCliques({6, 4, 5});
  before.graph.addEdge(0, 6);   // A-B weak
  before.graph.addEdge(6, 10);  // B-C strong
  before.graph.addEdge(7, 11);
  before.graph.addEdge(8, 12);
  tracker.addSnapshot(0.0, before.graph, before.partition);

  // B merges into A (against the strongest tie, which was C).
  std::vector<CommunityId> labels(15, kNoCommunity);
  for (NodeId i = 0; i < 10; ++i) labels[i] = 0;   // A+B together
  for (NodeId i = 10; i < 15; ++i) labels[i] = 1;  // C unchanged
  tracker.addSnapshot(3.0, before.graph, Partition(std::move(labels)));

  bool sawMerge = false;
  for (const LifecycleEvent& e : tracker.events()) {
    if (e.kind == LifecycleKind::kMergeDeath) {
      sawMerge = true;
      EXPECT_FALSE(e.strongestTie);
    }
  }
  EXPECT_TRUE(sawMerge);
}

TEST(TrackerTest, SplitDetectedWithBalancedRatio) {
  CommunityTracker tracker({.minCommunitySize = 3});
  // Snapshot 0: one 10-clique.
  CliqueWorld before = makeCliques({10});
  tracker.addSnapshot(0.0, before.graph, before.partition);

  // Snapshot 1: splits into 6 + 4.
  std::vector<CommunityId> labels(10, 0);
  for (NodeId i = 6; i < 10; ++i) labels[i] = 1;
  tracker.addSnapshot(3.0, before.graph, Partition(std::move(labels)));

  ASSERT_EQ(tracker.splitSizeRatios().size(), 1u);
  EXPECT_NEAR(tracker.splitSizeRatios()[0].ratio, 4.0 / 6.0, 1e-12);
  bool sawSplit = false, sawBirth = false;
  for (const LifecycleEvent& e : tracker.events()) {
    if (e.kind == LifecycleKind::kSplit) {
      sawSplit = true;
      EXPECT_EQ(e.other, 2u);  // two children
    }
    if (e.kind == LifecycleKind::kBirth && e.day == 3.0) sawBirth = true;
  }
  EXPECT_TRUE(sawSplit);
  EXPECT_TRUE(sawBirth);  // the smaller half is a birth
  EXPECT_EQ(tracker.communities().size(), 2u);
}

TEST(TrackerTest, DissolveWhenCommunityFallsBelowThreshold) {
  CommunityTracker tracker({.minCommunitySize = 5});
  CliqueWorld before = makeCliques({6, 6});
  tracker.addSnapshot(0.0, before.graph, before.partition);

  // Second snapshot: first community fragments below the size threshold.
  std::vector<CommunityId> labels(12, kNoCommunity);
  for (NodeId i = 0; i < 3; ++i) labels[i] = 10;
  for (NodeId i = 3; i < 6; ++i) labels[i] = 11;
  for (NodeId i = 6; i < 12; ++i) labels[i] = 12;
  tracker.addSnapshot(3.0, before.graph, Partition(std::move(labels)));

  bool sawDissolve = false;
  for (const LifecycleEvent& e : tracker.events()) {
    if (e.kind == LifecycleKind::kDissolve) sawDissolve = true;
  }
  EXPECT_TRUE(sawDissolve);
}

TEST(TrackerTest, MembershipReflectsLatestSnapshot) {
  CommunityTracker tracker({.minCommunitySize = 3});
  const CliqueWorld world = makeCliques({4, 4}, 10);
  tracker.addSnapshot(0.0, world.graph, world.partition);
  const auto& membership = tracker.currentMembership();
  ASSERT_EQ(membership.size(), 10u);
  EXPECT_EQ(membership[0], membership[1]);
  EXPECT_NE(membership[0], membership[4]);
  EXPECT_EQ(membership[8], 0xffffffffu);  // outside all communities
  EXPECT_EQ(membership[9], 0xffffffffu);
}

TEST(TrackerTest, InDegreeRatioRecorded) {
  CommunityTracker tracker({.minCommunitySize = 3});
  // One 4-clique with a pendant edge to an outside node.
  CliqueWorld world = makeCliques({4}, 5);
  world.graph.addEdge(0, 4);
  tracker.addSnapshot(0.0, world.graph, world.partition);
  const TrackedCommunity& c = tracker.communities()[0];
  ASSERT_EQ(c.history.size(), 1u);
  // 6 internal edges; total member degree = 6*2 + 1 = 13.
  EXPECT_NEAR(c.history[0].inDegreeRatio, 6.0 / 13.0, 1e-12);
  EXPECT_EQ(c.history[0].size, 4u);
}

TEST(TrackerTest, RejectsNonIncreasingDays) {
  CommunityTracker tracker;
  const CliqueWorld world = makeCliques({12});
  tracker.addSnapshot(1.0, world.graph, world.partition);
  EXPECT_THROW(tracker.addSnapshot(1.0, world.graph, world.partition),
               std::invalid_argument);
}

TEST(TrackerTest, RejectsSizeMismatch) {
  CommunityTracker tracker;
  const CliqueWorld world = makeCliques({12});
  Graph bigger = world.graph;
  bigger.addNode();
  EXPECT_THROW(tracker.addSnapshot(0.0, bigger, world.partition),
               std::invalid_argument);
}

TEST(TrackerTest, GrowingCommunityKeepsIdentity) {
  CommunityTracker tracker({.minCommunitySize = 3});
  CliqueWorld world = makeCliques({5}, 8);
  tracker.addSnapshot(0.0, world.graph, world.partition);

  // Community absorbs three more nodes.
  std::vector<CommunityId> labels(8, 0);
  tracker.addSnapshot(3.0, world.graph, Partition(std::move(labels)));
  ASSERT_EQ(tracker.communities().size(), 1u);
  const TrackedCommunity& c = tracker.communities()[0];
  ASSERT_EQ(c.history.size(), 2u);
  EXPECT_EQ(c.history[1].size, 8u);
  EXPECT_NEAR(c.history[1].selfSimilarity, 5.0 / 8.0, 1e-12);
}

}  // namespace
}  // namespace msd
