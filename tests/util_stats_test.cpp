#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace msd {
namespace {

TEST(StatsTest, MeanOfKnownValues) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(values), 2.5);
}

TEST(StatsTest, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(StatsTest, StddevOfConstantIsZero) {
  const std::vector<double> values = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev(values), 0.0);
}

TEST(StatsTest, StddevOfKnownValues) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(values), 2.0, 1e-12);  // classic textbook sample
}

TEST(StatsTest, StddevOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{3.0}), 0.0);
}

TEST(StatsTest, PearsonPerfectPositive) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(StatsTest, PearsonPerfectNegative) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(StatsTest, PearsonZeroVarianceIsZero) {
  const std::vector<double> xs = {1, 1, 1};
  const std::vector<double> ys = {1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(StatsTest, PearsonRejectsLengthMismatch) {
  const std::vector<double> xs = {1, 2};
  const std::vector<double> ys = {1, 2, 3};
  EXPECT_THROW((void)pearson(xs, ys), std::invalid_argument);
}

TEST(StatsTest, PercentileEndpoints) {
  const std::vector<double> values = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(values, 0.5), 3.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> values = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.25), 2.5);
}

TEST(StatsTest, PercentileRejectsEmpty) {
  EXPECT_THROW((void)percentile({}, 0.5), std::invalid_argument);
}

TEST(StatsTest, EmpiricalCdfCollapsesDuplicates) {
  const auto cdf = empiricalCdf({1.0, 1.0, 2.0, 3.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.5);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(StatsTest, EmpiricalCdfIsMonotone) {
  const auto cdf = empiricalCdf({4.0, -1.0, 2.5, 2.5, 0.0, 9.0});
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(StatsTest, FractionAtOrBelow) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(fractionAtOrBelow(values, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(fractionAtOrBelow(values, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(fractionAtOrBelow(values, 10.0), 1.0);
}

TEST(RunningStatsTest, MatchesBatchStatistics) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats stats;
  for (double v : values) stats.add(v);
  EXPECT_EQ(stats.count(), values.size());
  EXPECT_NEAR(stats.mean(), mean(values), 1e-12);
  EXPECT_NEAR(stats.stddev(), stddev(values), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, EmptyIsSafe) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

}  // namespace
}  // namespace msd
