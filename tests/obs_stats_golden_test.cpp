// Golden lock for the msd-stats-v1 serialization and the Prometheus
// text exposition: a fixed set of counters/gauges/histograms is sampled
// twice, scrubbed of wall-clock content (t_ns zeroed, rates dropped,
// nanos histograms count-only — the statsSampleJson(includeTimings=
// false) contract), and the resulting JSONL + exposition text must
// match tests/golden/stats_series.golden byte for byte. A renamed key,
// a reordered section, or a float formatting change is a diff, not a
// surprise.
//
// To regenerate after an *intentional* schema change:
//   MSD_UPDATE_GOLDEN=1 ./obs_stats_golden_test
// then review the diff like any other code change.
//
// Runs alone in its own binary: the registry is process-wide, so
// sharing a binary with other tests would leak their metrics into the
// sample.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/counters.h"
#include "obs/histogram_obs.h"
#include "obs/registry.h"
#include "obs/stats.h"
#include "util/parallel.h"

#ifndef MSD_STATS_GOLDEN_FILE
#error "MSD_STATS_GOLDEN_FILE must point at the checked-in golden file"
#endif

namespace msd {
namespace {

/// Two deterministic samples over a hand-fed registry, serialized the
/// way the sampler streams them, followed by the Prometheus exposition
/// of the final sample.
std::string buildSnapshot() {
  setThreadCount(1);
  obs::resetAll();

  MSD_COUNTER_ADD("golden.events", 1024);
  MSD_COUNTER_ADD("golden.flushes", 3);
  MSD_GAUGE_SET("golden.queue_depth", 17);
  for (int i = 1; i <= 32; ++i) {
    MSD_HISTOGRAM_RECORD("golden.block_bytes", i * 100);
  }
  // A nanos-unit histogram fed a fixed value (not a timer): the scrubbed
  // JSONL keeps only its count, the exposition keeps everything.
  MSD_HISTOGRAM_RECORD_NS("golden.flush_ns", 123456);

  obs::StatsSample first =
      obs::takeStatsSample(nullptr, /*sampleMemory=*/false);
  first.seq = 0;
  MSD_COUNTER_ADD("golden.events", 2048);
  obs::StatsSample second =
      obs::takeStatsSample(&first, /*sampleMemory=*/false);
  second.seq = 1;

  std::string out =
      obs::statsHeaderJson(50'000'000, /*includeRun=*/false).dump(-1) + "\n";
  out += obs::statsSampleJson(first, /*includeTimings=*/false).dump(-1) + "\n";
  out += obs::statsSampleJson(second, /*includeTimings=*/false).dump(-1) +
         "\n";
  out += "--- prometheus ---\n";
  out += obs::statsPrometheusText(second);
  return out;
}

TEST(ObsStatsGoldenTest, SeriesMatchesCheckedInGolden) {
  const std::string snapshot = buildSnapshot();

  if (std::getenv("MSD_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(MSD_STATS_GOLDEN_FILE, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << MSD_STATS_GOLDEN_FILE;
    out << snapshot;
    GTEST_SKIP() << "golden file regenerated at " << MSD_STATS_GOLDEN_FILE;
  }

  std::ifstream in(MSD_STATS_GOLDEN_FILE);
  ASSERT_TRUE(in.good())
      << "missing golden file " << MSD_STATS_GOLDEN_FILE
      << " — regenerate with MSD_UPDATE_GOLDEN=1 ./obs_stats_golden_test";
  std::ostringstream golden;
  golden << in.rdbuf();

  std::istringstream actualLines(snapshot);
  std::istringstream goldenLines(golden.str());
  std::string actualLine, goldenLine;
  std::size_t lineNumber = 0;
  while (std::getline(goldenLines, goldenLine)) {
    ++lineNumber;
    ASSERT_TRUE(std::getline(actualLines, actualLine))
        << "snapshot ends early at golden line " << lineNumber;
    ASSERT_EQ(actualLine, goldenLine)
        << "first divergence at line " << lineNumber;
  }
  EXPECT_FALSE(std::getline(actualLines, actualLine))
      << "snapshot has extra lines beyond the golden file";
}

TEST(ObsStatsGoldenTest, ScrubbedSeriesStillValidates) {
  // The JSONL half of the golden (everything above the exposition
  // divider) must parse clean through the same validator the tools use.
  const std::string snapshot = buildSnapshot();
  const std::string jsonl =
      snapshot.substr(0, snapshot.find("--- prometheus ---"));
  const std::string path = testing::TempDir() + "/stats_golden_check.jsonl";
  {
    std::ofstream out(path, std::ios::trunc);
    out << jsonl;
  }
  const obs::StatsSeries series = obs::parseStatsFile(path);
  EXPECT_EQ(series.sampleCount, 2u);
  EXPECT_FALSE(series.hasRun);
  EXPECT_DOUBLE_EQ(series.intervalMs, 50.0);
}

}  // namespace
}  // namespace msd
