#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "analysis/metrics_over_time.h"
#include "gen/trace_generator.h"
#include "graph/dynamic_graph.h"
#include "metrics/clustering.h"
#include "metrics/components.h"
#include "metrics/paths.h"
#include "util/rng.h"

namespace msd {
namespace {

/// Restores the configured thread count when a test exits.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(threadCount()) {}
  ~ThreadCountGuard() { setThreadCount(saved_); }

 private:
  std::size_t saved_;
};

TEST(ParallelForTest, CoversEveryIndexOnceUnderOddGrains) {
  ThreadCountGuard guard;
  setThreadCount(4);
  for (std::size_t grain : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                            std::size_t{64}, std::size_t{5000}}) {
    std::vector<std::atomic<int>> hits(1237);
    parallelFor(5, hits.size(), grain,
                [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), i < 5 ? 0 : 1) << "index " << i;
    }
  }
}

TEST(ParallelForTest, EmptyAndReversedRangesAreNoOps) {
  std::atomic<int> calls{0};
  parallelFor(3, 3, 1, [&](std::size_t) { calls.fetch_add(1); });
  parallelFor(7, 3, 1, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, NestedCallsRunInline) {
  ThreadCountGuard guard;
  setThreadCount(4);
  std::vector<std::atomic<int>> hits(64 * 16);
  parallelFor(0, 64, 1, [&](std::size_t outer) {
    parallelFor(0, 16, 4, [&](std::size_t inner) {
      hits[outer * 16 + inner].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadCountGuard guard;
  setThreadCount(4);
  EXPECT_THROW(parallelFor(0, 1000, 3,
                           [](std::size_t i) {
                             if (i == 501) {
                               throw std::runtime_error("boom");
                             }
                           }),
               std::runtime_error);
  // The pool must stay usable after an exception unwound a batch.
  std::atomic<int> calls{0};
  parallelFor(0, 100, 7, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 100);
}

TEST(ParallelReduceTest, SumsMatchSequentialUnderOddGrains) {
  ThreadCountGuard guard;
  setThreadCount(4);
  const std::size_t n = 1000;
  const std::size_t expected = n * (n - 1) / 2;
  for (std::size_t grain : {std::size_t{1}, std::size_t{9}, std::size_t{128},
                            std::size_t{4096}}) {
    const std::size_t total = parallelReduce(
        std::size_t{0}, n, grain, std::size_t{0},
        [](std::size_t chunkBegin, std::size_t chunkEnd, std::size_t) {
          std::size_t partial = 0;
          for (std::size_t i = chunkBegin; i < chunkEnd; ++i) partial += i;
          return partial;
        },
        [](std::size_t accumulator, std::size_t partial) {
          return accumulator + partial;
        });
    EXPECT_EQ(total, expected) << "grain " << grain;
  }
}

TEST(ParallelReduceTest, FloatingPointSumBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  // A sum whose rounding depends on combine order: the fixed chunk
  // decomposition must make it identical at every thread count.
  std::vector<double> values(10007);
  Rng rng(11);
  for (double& value : values) value = rng.uniform(0.0, 1e6);
  auto sum = [&] {
    return parallelReduce(
        std::size_t{0}, values.size(), std::size_t{64}, 0.0,
        [&](std::size_t chunkBegin, std::size_t chunkEnd, std::size_t) {
          double partial = 0.0;
          for (std::size_t i = chunkBegin; i < chunkEnd; ++i) {
            partial += values[i];
          }
          return partial;
        },
        [](double accumulator, double partial) {
          return accumulator + partial;
        });
  };
  setThreadCount(1);
  const double sequential = sum();
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    setThreadCount(threads);
    EXPECT_EQ(sum(), sequential) << "threads " << threads;
  }
}

TEST(ParallelReduceTest, ExceptionInChunkPropagates) {
  ThreadCountGuard guard;
  setThreadCount(2);
  EXPECT_THROW(
      parallelReduce(
          std::size_t{0}, std::size_t{100}, std::size_t{5}, 0,
          [](std::size_t chunkBegin, std::size_t, std::size_t) -> int {
            if (chunkBegin == 50) throw std::invalid_argument("chunk");
            return 1;
          },
          [](int accumulator, int partial) { return accumulator + partial; }),
      std::invalid_argument);
}

TEST(RngStreamTest, PureAndIndexSeparated) {
  Rng a = Rng::stream(42, 3);
  Rng b = Rng::stream(42, 3);
  Rng c = Rng::stream(42, 4);
  bool differs = false;
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(ThreadCountTest, SetAndRestore) {
  ThreadCountGuard guard;
  setThreadCount(3);
  EXPECT_EQ(threadCount(), 3u);
  EXPECT_EQ(ThreadPool::shared().workerCount(), 3u);
  setThreadCount(0);  // back to the MSD_THREADS / hardware default
  EXPECT_GE(threadCount(), 1u);
}

TEST(ParallelKernelsTest, ConnectedComponentsMatchSequentialOnLargeGraph) {
  ThreadCountGuard guard;
  // 5000 nodes > the parallel threshold; sprinkle edges so several
  // components of varying size exist.
  Graph g(5000);
  Rng rng(21);
  for (int i = 0; i < 6000; ++i) {
    const auto u = static_cast<NodeId>(rng.uniformInt(5000));
    const auto v = static_cast<NodeId>(rng.uniformInt(5000));
    if (u != v && !g.hasEdge(u, v)) g.addEdge(u, v);
  }
  setThreadCount(1);
  const Components sequential = connectedComponents(g);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    setThreadCount(threads);
    const Components parallel = connectedComponents(g);
    ASSERT_EQ(parallel.count, sequential.count) << "threads " << threads;
    EXPECT_EQ(parallel.label, sequential.label);
    EXPECT_EQ(parallel.size, sequential.size);
  }
}

TEST(ParallelKernelsTest, ClusteringIdenticalAcrossThreadCountsAndOverloads) {
  ThreadCountGuard guard;
  Graph g(600);
  Rng build(31);
  for (int i = 0; i < 4000; ++i) {
    const auto u = static_cast<NodeId>(build.uniformInt(600));
    const auto v = static_cast<NodeId>(build.uniformInt(600));
    if (u != v && !g.hasEdge(u, v)) g.addEdge(u, v);
  }
  setThreadCount(1);
  const double sequential = averageClustering(g);
  const CsrGraph csr = CsrGraph::sortedFromGraph(g);
  for (NodeId node = 0; node < 50; ++node) {
    EXPECT_DOUBLE_EQ(localClustering(csr, node), localClustering(g, node));
  }
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    setThreadCount(threads);
    EXPECT_EQ(averageClustering(g), sequential) << "threads " << threads;
    Rng rng(5);
    Rng rngSeq(5);
    setThreadCount(1);
    const double sampledSeq = sampledAverageClustering(g, 200, rngSeq);
    setThreadCount(threads);
    EXPECT_EQ(sampledAverageClustering(g, 200, rng), sampledSeq);
  }
}

TEST(ParallelKernelsTest, SampledPathLengthIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Graph g(800);
  Rng build(41);
  for (int i = 0; i < 2400; ++i) {
    const auto u = static_cast<NodeId>(build.uniformInt(800));
    const auto v = static_cast<NodeId>(build.uniformInt(800));
    if (u != v && !g.hasEdge(u, v)) g.addEdge(u, v);
  }
  setThreadCount(1);
  Rng rngSeq(6);
  const double sequential = sampledAveragePathLength(g, 24, rngSeq);
  EXPECT_GT(sequential, 0.0);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    setThreadCount(threads);
    Rng rng(6);
    EXPECT_EQ(sampledAveragePathLength(g, 24, rng), sequential)
        << "threads " << threads;
  }
}

void expectSeriesIdentical(const TimeSeries& a, const TimeSeries& b) {
  ASSERT_EQ(a.size(), b.size()) << a.name();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.timeAt(i), b.timeAt(i)) << a.name() << " point " << i;
    // Bitwise equality: EXPECT_EQ on doubles, no tolerance.
    EXPECT_EQ(a.valueAt(i), b.valueAt(i)) << a.name() << " point " << i;
  }
}

TEST(ParallelKernelsTest, MetricsOverTimeBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  // A shortened communityScale trace keeps the test fast while exercising
  // the exact per-snapshot pipeline of the Fig 1 bench.
  GeneratorConfig generatorConfig = GeneratorConfig::communityScale(7);
  generatorConfig.days = 80.0;
  generatorConfig.merge.mergeDay = 50.0;
  generatorConfig.merge.secondDurationDays = 40.0;
  TraceGenerator generator(generatorConfig);
  const EventStream stream = generator.generate();

  MetricsOverTimeConfig config;
  config.snapshotStep = 4.0;
  config.pathEvery = 8.0;
  config.pathSamples = 6;
  config.clusteringSamples = 80;

  setThreadCount(1);
  const MetricsOverTime sequential = analyzeMetricsOverTime(stream, config);
  EXPECT_GT(sequential.averageDegree.size(), 3u);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    setThreadCount(threads);
    const MetricsOverTime parallel = analyzeMetricsOverTime(stream, config);
    expectSeriesIdentical(parallel.averageDegree, sequential.averageDegree);
    expectSeriesIdentical(parallel.averagePathLength,
                          sequential.averagePathLength);
    expectSeriesIdentical(parallel.clusteringCoefficient,
                          sequential.clusteringCoefficient);
    expectSeriesIdentical(parallel.assortativity, sequential.assortativity);
  }
}

}  // namespace
}  // namespace msd
