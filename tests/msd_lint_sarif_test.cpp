// SARIF emission and baseline-ratchet tests: an exact snapshot of the
// SARIF 2.1.0 skeleton (schema, driver, full H1–H9 rule table),
// structural checks for results and inSource suppressions, baseline
// round-trip/diff semantics in both ratchet directions, the CLI exit
// contract, and the real-tree self-scan against the committed baseline.

#include "msd_lint/baseline.h"
#include "msd_lint/lint.h"
#include "msd_lint/sarif.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <sys/wait.h>
#include <vector>

namespace msd::lint {
namespace {

namespace fs = std::filesystem;

Finding finding(std::string file, std::size_t line, std::string hazard,
                std::string message, bool suppressed = false,
                std::string reason = "") {
  Finding f;
  f.file = std::move(file);
  f.line = line;
  f.hazard = std::move(hazard);
  f.message = std::move(message);
  f.suppressed = suppressed;
  f.suppressReason = std::move(reason);
  return f;
}

// ---------------------------------------------------------------------------
// SARIF document.
// ---------------------------------------------------------------------------

// The full document for an empty scan, pinned byte-for-byte: any change
// to the schema URL, driver block, or rule table shows up here first.
constexpr const char* kEmptySarif = R"sarif({
  "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "msd_lint",
          "version": "2.0.0",
          "informationUri": "https://example.invalid/msd_lint",
          "rules": [
            {
              "id": "H1",
              "shortDescription": {"text": "Unordered-container iteration in an output-relevant file"}
            },
            {
              "id": "H2",
              "shortDescription": {"text": "Banned nondeterminism source (rand/random_device/clock)"}
            },
            {
              "id": "H3",
              "shortDescription": {"text": "By-reference floating-point accumulation in a pool lambda"}
            },
            {
              "id": "H4",
              "shortDescription": {"text": "Thread identity (thread_local/get_id) outside the pool"}
            },
            {
              "id": "H5",
              "shortDescription": {"text": "Raw thread construction outside src/util/parallel.*"}
            },
            {
              "id": "H6",
              "shortDescription": {"text": "Shared-state write in a pool lambda without a safe idiom"}
            },
            {
              "id": "H7",
              "shortDescription": {"text": "Raw wire-parse byte access without a dominating bounds check"}
            },
            {
              "id": "H8",
              "shortDescription": {"text": "Discarded error-bearing result"}
            },
            {
              "id": "H9",
              "shortDescription": {"text": "Nondeterministic ordering sink (pointer order / unordered extraction)"}
            }
          ]
        }
      },
      "results": [
      ]
    }
  ]
}
)sarif";

TEST(SarifTest, EmptyScanMatchesSnapshot) {
  EXPECT_EQ(toSarif({}), kEmptySarif);
}

TEST(SarifTest, ResultCarriesRuleIdIndexAndLocation) {
  const std::string doc =
      toSarif({finding("src/io/reader.cpp", 42, "H7", "raw access")});
  EXPECT_NE(doc.find("\"ruleId\": \"H7\""), std::string::npos);
  EXPECT_NE(doc.find("\"ruleIndex\": 6"), std::string::npos);
  EXPECT_NE(doc.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(doc.find("\"message\": {\"text\": \"raw access\"}"),
            std::string::npos);
  EXPECT_NE(doc.find("\"uri\": \"src/io/reader.cpp\", "
                     "\"uriBaseId\": \"SRCROOT\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"region\": {\"startLine\": 42}"), std::string::npos);
  EXPECT_EQ(doc.find("\"suppressions\""), std::string::npos);
}

TEST(SarifTest, SuppressedFindingGetsInSourceSuppression) {
  const std::string doc = toSarif(
      {finding("src/a.cpp", 7, "H1", "msg", true, "keyed accumulator")});
  EXPECT_NE(doc.find("\"suppressions\": ["), std::string::npos);
  EXPECT_NE(doc.find("{\"kind\": \"inSource\", \"justification\": "
                     "\"keyed accumulator\"}"),
            std::string::npos);
}

TEST(SarifTest, EscapesQuotesAndControlCharacters) {
  const std::string doc =
      toSarif({finding("src/a.cpp", 1, "H2", "uses \"rand\"\n\ttwice")});
  EXPECT_NE(doc.find("uses \\\"rand\\\"\\n\\ttwice"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Baseline: serialization, parsing, ratchet.
// ---------------------------------------------------------------------------

TEST(BaselineTest, WriteParseRoundTrip) {
  const std::string doc = writeBaseline(
      {finding("src/io/a.cpp", 3, "H7", "x"),
       finding("src/io/a.cpp", 9, "H7", "y"),
       finding("tools/b.cpp", 5, "H8", "z"),
       finding("src/io/a.cpp", 4, "H1", "suppressed", true, "why")});
  const std::vector<BaselineEntry> entries = parseBaseline(doc);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].file, "src/io/a.cpp");
  EXPECT_EQ(entries[0].hazard, "H7");
  EXPECT_EQ(entries[0].count, 2u);
  EXPECT_EQ(entries[1].file, "tools/b.cpp");
  EXPECT_EQ(entries[1].hazard, "H8");
  EXPECT_EQ(entries[1].count, 1u);
}

TEST(BaselineTest, EmptyBaselineRoundTrip) {
  EXPECT_TRUE(parseBaseline(writeBaseline({})).empty());
}

TEST(BaselineTest, MalformedDocumentsThrow) {
  EXPECT_THROW(parseBaseline(""), std::runtime_error);
  EXPECT_THROW(parseBaseline("{}"), std::runtime_error);  // no schema tag
  EXPECT_THROW(parseBaseline("{\"schema\": \"other-v9\", \"findings\": []}"),
               std::runtime_error);
  EXPECT_THROW(
      parseBaseline("{\"schema\": \"msd-lint-baseline-v1\", \"findings\": "
                    "[{\"file\": \"a\", \"hazard\": \"H0\", \"count\": 1}]}"),
      std::runtime_error);
  EXPECT_THROW(
      parseBaseline("{\"schema\": \"msd-lint-baseline-v1\", \"findings\": "
                    "[{\"file\": \"a\", \"hazard\": \"H1\"}]}"),
      std::runtime_error);
}

TEST(BaselineTest, NewFindingIsFlaggedAsDrift) {
  const std::vector<BaselineEntry> baseline =
      parseBaseline(writeBaseline({finding("src/a.cpp", 1, "H1", "x")}));
  const BaselineDiff diff = diffBaseline(
      {finding("src/a.cpp", 1, "H1", "x"), finding("src/a.cpp", 9, "H1", "y")},
      baseline);
  EXPECT_FALSE(diff.clean());
  ASSERT_EQ(diff.newFindings.size(), 1u);
  EXPECT_TRUE(diff.staleEntries.empty());
}

TEST(BaselineTest, StaleEntryIsFlaggedAsDrift) {
  const std::vector<BaselineEntry> baseline =
      parseBaseline(writeBaseline({finding("src/a.cpp", 1, "H1", "x")}));
  const BaselineDiff diff = diffBaseline({}, baseline);
  EXPECT_FALSE(diff.clean());
  EXPECT_TRUE(diff.newFindings.empty());
  ASSERT_EQ(diff.staleEntries.size(), 1u);
}

TEST(BaselineTest, MatchingScanIsClean) {
  const std::vector<Finding> scan = {finding("src/a.cpp", 1, "H1", "x"),
                                     finding("src/b.cpp", 2, "H7", "y")};
  EXPECT_TRUE(diffBaseline(scan, parseBaseline(writeBaseline(scan))).clean());
}

TEST(BaselineTest, SuppressedFindingsNeverCount) {
  // A suppressed finding is neither new against an empty baseline nor
  // able to satisfy a baseline entry.
  const std::vector<Finding> scan = {
      finding("src/a.cpp", 1, "H1", "x", true, "waived")};
  EXPECT_TRUE(diffBaseline(scan, {}).clean());
  const std::vector<BaselineEntry> baseline =
      parseBaseline(writeBaseline({finding("src/a.cpp", 1, "H1", "x")}));
  EXPECT_FALSE(diffBaseline(scan, baseline).clean());
}

// ---------------------------------------------------------------------------
// CLI exit contract and the real-tree self-scan.
// ---------------------------------------------------------------------------

#if defined(MSD_LINT_BINARY) && defined(MSD_LINT_REPO_ROOT)

int runLint(const std::string& argsTail) {
  const std::string command = std::string(MSD_LINT_BINARY) + " " + argsTail +
                              " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  return WEXITSTATUS(status);
}

class RatchetCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("msd_lint_ratchet_" + std::to_string(::getpid()));
    fs::remove_all(root_);
    fs::create_directories(root_ / "src" / "io");
    fs::create_directories(root_ / "tools");
    fs::create_directories(root_ / "bench");
    baseline_ = (root_ / "tools" / "msd_lint_baseline.json").string();
  }
  void TearDown() override { fs::remove_all(root_); }

  void writeFile(const std::string& relative, const std::string& text) {
    std::ofstream out(root_ / relative);
    out << text;
  }

  std::string rootArg() const { return "--root=" + root_.string(); }

  fs::path root_;
  std::string baseline_;
};

TEST_F(RatchetCliTest, WriteBaselineThenDiffIsClean) {
  writeFile("src/io/reader.cpp",
            "int f(const std::uint8_t* data) { return data[9]; }\n");
  EXPECT_EQ(runLint(rootArg() + " --write-baseline"), 0);
  EXPECT_EQ(runLint(rootArg() + " --format=sarif --diff-baseline"), 0);
  // Without the ratchet the finding still fails the plain scan.
  EXPECT_EQ(runLint(rootArg()), 1);
}

TEST_F(RatchetCliTest, NewFindingFailsRatchet) {
  writeFile("src/io/reader.cpp", "int f() { return 0; }\n");
  EXPECT_EQ(runLint(rootArg() + " --write-baseline"), 0);
  writeFile("src/io/reader.cpp",
            "int f(const std::uint8_t* data) { return data[9]; }\n");
  EXPECT_EQ(runLint(rootArg() + " --diff-baseline"), 1);
}

TEST_F(RatchetCliTest, StaleBaselineEntryFailsRatchet) {
  writeFile("src/io/reader.cpp",
            "int f(const std::uint8_t* data) { return data[9]; }\n");
  EXPECT_EQ(runLint(rootArg() + " --write-baseline"), 0);
  // Fix the finding but leave the baseline entry: the ratchet must
  // demand the entry's removal.
  writeFile("src/io/reader.cpp", "int f() { return 0; }\n");
  EXPECT_EQ(runLint(rootArg() + " --diff-baseline"), 1);
}

TEST_F(RatchetCliTest, MissingBaselineExitsTwo) {
  writeFile("src/io/reader.cpp", "int f() { return 0; }\n");
  EXPECT_EQ(runLint(rootArg() + " --diff-baseline"), 2);
}

TEST_F(RatchetCliTest, MalformedBaselineExitsTwo) {
  writeFile("src/io/reader.cpp", "int f() { return 0; }\n");
  writeFile("tools/msd_lint_baseline.json", "{\"schema\": \"nope\"}");
  EXPECT_EQ(runLint(rootArg() + " --diff-baseline"), 2);
}

TEST_F(RatchetCliTest, DiffAndWriteAreMutuallyExclusive) {
  EXPECT_EQ(runLint(rootArg() + " --diff-baseline --write-baseline"), 2);
}

TEST(LintSelfScanSarifTest, RealTreeDiffBaselineIsClean) {
  // The shipped tree must pass the exact gate check.sh and ctest run:
  // SARIF output mode with the committed (empty) baseline.
  EXPECT_EQ(runLint("--root=" MSD_LINT_REPO_ROOT
                    " --format=sarif --diff-baseline"),
            0);
}

TEST(LintSelfScanSarifTest, CommittedBaselineIsEmpty) {
  std::ifstream in(std::string(MSD_LINT_REPO_ROOT) +
                   "/tools/msd_lint_baseline.json");
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(parseBaseline(buffer.str()).empty())
      << "the committed baseline must stay empty: fix new findings or "
         "waive them inline instead of ratcheting them in";
}

#endif  // MSD_LINT_BINARY && MSD_LINT_REPO_ROOT

}  // namespace
}  // namespace msd::lint
