#!/usr/bin/env sh
# One-shot pre-PR gate: strict-warning release build, determinism lint,
# and the tier-1 test suite. `--full` additionally runs the tsan and asan
# preset subsets. Run from anywhere; everything is relative to the repo
# root. Exits non-zero on the first failure.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
full=0
for arg in "$@"; do
  case "$arg" in
    --full) full=1 ;;
    -h|--help)
      echo "usage: tools/check.sh [--full]"
      echo "  default: werror build + msd_lint + tier-1 ctest"
      echo "  --full:  also tsan and asan preset test subsets"
      exit 0
      ;;
    *) echo "check.sh: unknown argument: $arg" >&2; exit 2 ;;
  esac
done

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

step() { printf '\n== %s ==\n' "$1"; }

step "werror build (release + -Wall -Wextra -Wshadow -Wconversion -Werror)"
cmake --preset werror -S "$root"
cmake --build --preset werror -j "$jobs"

step "msd_lint (determinism hazards H1-H5)"
"$root/build-werror/tools/msd_lint" --root="$root"

step "tier-1 tests (werror build)"
ctest --test-dir "$root/build-werror" --output-on-failure -j "$jobs"

if [ "$full" -eq 1 ]; then
  step "tsan build + concurrent-kernel subset"
  cmake --preset tsan -S "$root"
  cmake --build --preset tsan -j "$jobs"
  (cd "$root" && ctest --preset tsan -j "$jobs")

  step "asan build + fast-test subset"
  cmake --preset asan -S "$root"
  cmake --build --preset asan -j "$jobs"
  (cd "$root" && ctest --preset asan -j "$jobs")
fi

step "all checks passed"
