#!/usr/bin/env sh
# One-shot pre-PR gate: strict-warning release build, determinism lint,
# and the tier-1 test suite. `--bench` additionally compares a fresh
# bench run against the committed baseline with a tightened wall-time
# threshold; `--full` additionally runs the tsan, asan, and obs-off
# preset subsets. Run from anywhere; everything is relative to the repo
# root. Exits non-zero on the first failure.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
full=0
bench=0
for arg in "$@"; do
  case "$arg" in
    --full) full=1 ;;
    --bench) bench=1 ;;
    -h|--help)
      echo "usage: tools/check.sh [--bench] [--full]"
      echo "  default: werror build + msd_lint + tier-1 ctest"
      echo "  --bench: also compare against the committed bench baseline"
      echo "           (counters exact, wall-time threshold 50%)"
      echo "  --full:  also tsan, asan, and obs-off preset test subsets"
      exit 0
      ;;
    *) echo "check.sh: unknown argument: $arg" >&2; exit 2 ;;
  esac
done

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

step() { printf '\n== %s ==\n' "$1"; }

step "werror build (release + -Wall -Wextra -Wshadow -Wconversion -Werror)"
cmake --preset werror -S "$root"
cmake --build --preset werror -j "$jobs"

step "msd_lint (hazards H1-H9, SARIF + ratchet baseline)"
"$root/build-werror/tools/msd_lint" --root="$root" \
  --format=sarif --diff-baseline > /dev/null

step "live telemetry smoke (msd-stats-v1 emit + validate)"
stats_dir="$root/build-werror/stats_smoke"
mkdir -p "$stats_dir"
"$root/build-werror/tools/msdyn" generate --scale=tiny --seed=1 \
  --format=bin --out="$stats_dir/trace.msdbin" \
  --stats-json="$stats_dir/stats.jsonl" --stats-interval-ms=5 \
  > /dev/null 2>&1
"$root/build-werror/tools/bench_compare" --validate \
  "$stats_dir/stats.jsonl"

step "scenario suite (named workloads + qualitative assertions)"
ctest --test-dir "$root/build-werror" --output-on-failure -j "$jobs" \
  -L scenario

step "tier-1 tests (werror build)"
ctest --test-dir "$root/build-werror" --output-on-failure -j "$jobs"

if [ "$bench" -eq 1 ]; then
  step "bench baseline (counters exact, wall-time threshold 50%)"
  cmake \
    -DBENCH_DIR="$root/build-werror/bench" \
    -DCOMPARE="$root/build-werror/tools/bench_compare" \
    -DOUT_DIR="$root/build-werror/bench/bench_baseline_out" \
    -DBASELINE_DIR="$root/bench_out/baseline" \
    -DMODE=compare -DTHRESHOLD=0.5 \
    -P "$root/tools/bench_baseline.cmake"
fi

if [ "$full" -eq 1 ]; then
  step "scale smoke (1e6-node streaming pipeline under a memory ceiling)"
  ctest --test-dir "$root/build-werror" --output-on-failure -R scale_smoke

  step "tsan build + concurrent-kernel subset"
  cmake --preset tsan -S "$root"
  cmake --build --preset tsan -j "$jobs"
  (cd "$root" && ctest --preset tsan -j "$jobs")

  step "asan build + fast-test subset"
  cmake --preset asan -S "$root"
  cmake --build --preset asan -j "$jobs"
  (cd "$root" && ctest --preset asan -j "$jobs")

  step "obs-off build + fast-test subset (instrumentation compiled out)"
  cmake --preset obs-off -S "$root"
  cmake --build --preset obs-off -j "$jobs"
  (cd "$root" && ctest --preset obs-off -j "$jobs")
fi

step "all checks passed"
