// msdyn — command-line front end for the library.
//
//   msdyn generate  --scale=renren --seed=1 --out=trace.msdb
//   msdyn generate  --nodes=1e7 --format=bin --out=trace.msdbin
//   msdyn info      trace.msdb
//   msdyn convert   trace.msdb trace.msdt
//   msdyn metrics   trace.msdb [--day=386] [--samples=24]
//   msdyn series    trace.msdbin [--step=1] [--csv=OUT.csv]
//   msdyn growth    trace.msdb --csv=growth.csv
//   msdyn communities trace.msdb [--delta=0.04] [--step=3]
//   msdyn merge     trace.msdb [--merge-day=386]
//   msdyn slice     IN OUT --from=D --to=D
//   msdyn export-temporal IN OUT.txt
//   msdyn scenario  list | describe NAME | run NAME [--scale=tiny]
//
// Input format is sniffed from the leading magic bytes (msd-bin-v1,
// legacy MSDB binary, or msdt text). Output format follows the
// extension: .msdt = text, .msdbin = msd-bin-v1, anything else = legacy
// binary (the temporal edge list is always plain "u v t" text).
// Generation and conversion involving .msdbin stream events in bounded
// memory — the paths paper-scale runs use.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <system_error>
#include <vector>

#include "analysis/community_analysis.h"
#include "analysis/growth.h"
#include "analysis/merge_analysis.h"
#include "analysis/metrics_over_time.h"
#include "io/binary_event_log.h"
#include "gen/trace_generator.h"
#include "graph/dynamic_graph.h"
#include "graph/stream_ops.h"
#include "io/csv.h"
#include "io/event_io.h"
#include "io/progress_io.h"
#include "metrics/assortativity.h"
#include "metrics/clustering.h"
#include "metrics/components.h"
#include "metrics/degree.h"
#include "metrics/neighborhood.h"
#include "metrics/paths.h"
#include "obs/events.h"
#include "obs/manifest.h"
#include "obs/mem.h"
#include "obs/progress.h"
#include "obs/registry.h"
#include "obs/stats.h"
#include "scenario/assertions.h"
#include "scenario/scenario.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

using namespace msd;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;

  const char* get(const std::string& name, const char* fallback) const {
    for (const auto& [key, value] : options) {
      if (key == name) return value.c_str();
    }
    return fallback;
  }
  double getDouble(const std::string& name, double fallback) const {
    const char* raw = get(name, nullptr);
    return raw == nullptr ? fallback : std::strtod(raw, nullptr);
  }
  std::uint64_t getU64(const std::string& name, std::uint64_t fallback) const {
    const char* raw = get(name, nullptr);
    return raw == nullptr ? fallback : std::strtoull(raw, nullptr, 10);
  }
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        args.options.emplace_back(arg.substr(2), "1");
      } else {
        args.options.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

bool hasSuffix(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool isTextPath(const std::string& path) { return hasSuffix(path, ".msdt"); }

bool isMsdbinPath(const std::string& path) {
  return hasSuffix(path, ".msdbin");
}

enum class TraceFormat { kText, kLegacyBinary, kMsdbin };

/// The input could not be opened or read at the OS level — as opposed to
/// a malformed trace. Carries the errno text so the user can tell a
/// missing/unreadable file from a corrupt one.
struct InputIoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Sniffs the on-disk format from the leading magic bytes, so any command
/// accepts any trace file regardless of its extension.
TraceFormat sniffFormat(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe.is_open()) {
    const int err = errno;
    throw InputIoError("cannot read '" + path + "': " +
                       std::generic_category().message(err));
  }
  char head[8] = {};
  probe.read(head, 8);
  const auto got = probe.gcount();
  if (got == 8 && std::memcmp(head, io::kBinaryMagic, 8) == 0) {
    return TraceFormat::kMsdbin;
  }
  if (got >= 4 && std::memcmp(head, "MSDB", 4) == 0) {
    return TraceFormat::kLegacyBinary;
  }
  return TraceFormat::kText;
}

EventStream loadAny(const std::string& path) {
  switch (sniffFormat(path)) {
    case TraceFormat::kMsdbin:
      return io::readBinaryLogFile(path);
    case TraceFormat::kLegacyBinary:
      return event_io::loadBinaryFile(path);
    case TraceFormat::kText:
      break;
  }
  return event_io::loadTextFile(path);
}

/// Binary-log options carrying the process manifest's seed (when one was
/// set), so the embedded-manifest cross-check holds on read-back.
io::BinaryLogOptions binaryLogOptions() {
  io::BinaryLogOptions options;
  const std::int64_t seed = obs::currentManifest().seed;
  options.seed = seed >= 0 ? static_cast<std::uint64_t>(seed) : 0;
  return options;
}

void saveAny(const EventStream& stream, const std::string& path) {
  if (isTextPath(path)) {
    event_io::saveTextFile(stream, path);
  } else if (isMsdbinPath(path)) {
    io::writeBinaryLogFile(stream, path, binaryLogOptions());
  } else {
    event_io::saveBinaryFile(stream, path);
  }
}

/// Progress-meter options for one command: rendering only when the user
/// passed --progress (forced, so piped stderr still gets lines), and
/// never in obs-off builds (the default `live` is false there).
obs::ProgressMeterOptions progressOptionsFor(const Args& args,
                                             std::string label,
                                             std::uint64_t totalItems) {
  obs::ProgressMeterOptions options;
  options.label = std::move(label);
  options.totalItems = totalItems;
  options.forceRender = true;
  options.live = options.live && args.get("progress", nullptr) != nullptr;
  return options;
}

/// Pumps every remaining event of `source` into `sink` in bounded chunks.
void pumpEvents(EventSource& source, EventSink& sink) {
  constexpr std::size_t kChunk = std::size_t{1} << 20;
  constexpr Day kForever = std::numeric_limits<Day>::infinity();
  while (true) {
    const auto chunk = source.nextChunk(kForever, kChunk);
    if (chunk.empty()) break;
    for (const Event& event : chunk) sink.push(event);
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: msdyn <command> [args]\n"
               "  generate        --scale=renren|community|tiny --seed=N "
               "--out=FILE\n"
               "                  [--nodes=N] [--format=bin]  (streams to "
               ".msdbin, bounded memory)\n"
               "  info            FILE\n"
               "  convert         IN OUT       (.msdt/.msdbin/legacy by "
               "extension; exit 2 on corrupt input)\n"
               "  series          FILE [--step=1] [--path-every=3] "
               "[--path-samples=24]\n"
               "                  [--clustering-samples=400] [--csv=OUT.csv]"
               "  (streams .msdbin)\n"
               "  metrics         FILE [--day=D] [--samples=N] [--anf]\n"
               "  growth          FILE [--csv=OUT.csv]\n"
               "  communities     FILE [--delta=0.04] [--step=3] "
               "[--min-size=10]\n"
               "  merge           FILE [--merge-day=386] [--window=94]\n"
               "  slice           IN OUT --from=D --to=D\n"
               "  export-temporal IN OUT.txt\n"
               "  scenario        list\n"
               "  scenario        describe NAME\n"
               "  scenario        run NAME [--scale=tiny] [--seed=1] "
               "[--out=DIR]\n"
               "                  [--set=key=value ...] [--no-assert] "
               "[--save-trace=FILE]\n"
               "  stats           summarize FILE   (min/median/max per "
               "msd-stats-v1 series; exit 2 on malformed input)\n"
               "global options:\n"
               "  --trace-json=FILE    write counters + scope timings as "
               "JSON after the command\n"
               "  --trace-events=FILE  record per-thread begin/end events "
               "and write Chrome\n"
               "                       trace-event JSON (open in "
               "ui.perfetto.dev) after the command\n"
               "  --trace-buffer-cap=N per-thread event ring capacity "
               "(default 65536)\n"
               "  --stats-json=FILE    sample live counters/gauges/"
               "histograms into an\n"
               "                       msd-stats-v1 JSONL time series "
               "while the command runs\n"
               "  --stats-interval-ms=N  sampling cadence for --stats-json "
               "(default 100)\n"
               "  --progress           live items/s, %%done, ETA line on "
               "stderr (streaming commands)\n");
  return 2;
}

int cmdGenerate(const Args& args) {
  const std::string scale = args.get("scale", "renren");
  const std::uint64_t seed = args.getU64("seed", 1);
  obs::setManifestSeed(static_cast<std::int64_t>(seed));
  const double targetNodes = args.getDouble("nodes", 0.0);
  const bool binFormat =
      std::string(args.get("format", "")) == "bin";
  const std::string out =
      args.get("out", binFormat ? "trace.msdbin" : "trace.msdb");
  GeneratorConfig config =
      targetNodes > 0.0
          ? GeneratorConfig::scaledTo(targetNodes, seed)
          : (scale == "tiny"
                 ? GeneratorConfig::tiny(seed)
                 : (scale == "community"
                        ? GeneratorConfig::communityScale(seed)
                        : GeneratorConfig::renren(seed)));
  Stopwatch watch;
  TraceGenerator generator(config);
  if (binFormat || isMsdbinPath(out)) {
    // Streaming path: events go straight into the msd-bin-v1 writer, so
    // the full EventStream is never materialized (paper-scale runs).
    io::BinaryEventWriter writer(out, binaryLogOptions());
    obs::ProgressMeter progress(progressOptionsFor(args, "generate", 0));
    io::ProgressSink sink(writer, progress);
    generator.generateTo(sink);
    progress.finish();
    const io::BinaryEventWriter::Stats stats = writer.close();
    std::printf(
        "generated %llu nodes / %llu edges in %.1fs -> %s "
        "(%llu blocks, %.1f MB)\n",
        static_cast<unsigned long long>(stats.nodeCount),
        static_cast<unsigned long long>(stats.edgeCount), watch.seconds(),
        out.c_str(), static_cast<unsigned long long>(stats.blockCount),
        static_cast<double>(stats.fileBytes) / (1024.0 * 1024.0));
    return 0;
  }
  const EventStream stream = generator.generate();
  saveAny(stream, out);
  {
    // In-memory path: no streaming seam to feed, so the meter reports
    // the end-of-run totals in one line.
    obs::ProgressMeter progress(
        progressOptionsFor(args, "generate", stream.size()));
    progress.add(stream.size());
  }
  std::printf("generated %zu nodes / %zu edges over %.0f days in %.1fs -> "
              "%s\n",
              stream.nodeCount(), stream.edgeCount(), stream.lastTime(),
              watch.seconds(), out.c_str());
  return 0;
}

int cmdInfo(const Args& args) {
  if (args.positional.empty()) return usage();
  const std::string& path = args.positional[0];
  std::size_t byOrigin[3] = {0, 0, 0};
  std::size_t events = 0, nodes = 0, edges = 0;
  double span = 0.0;
  const auto tally = [&byOrigin](std::span<const Event> chunk) {
    for (const Event& event : chunk) {
      if (event.kind == EventKind::kNodeJoin) {
        ++byOrigin[static_cast<std::size_t>(event.origin)];
      }
    }
  };
  if (sniffFormat(path) == TraceFormat::kMsdbin) {
    // Chunk-wise walk: header totals plus a bounded-memory origin tally.
    io::BinaryEventReader reader(path);
    constexpr Day kForever = std::numeric_limits<Day>::infinity();
    while (true) {
      const auto chunk = reader.nextChunk(kForever, std::size_t{1} << 20);
      if (chunk.empty()) break;
      tally(chunk);
    }
    events = reader.eventCount();
    nodes = reader.nodeCount();
    edges = reader.edgeCount();
    span = reader.lastTime();
    std::printf("format:  msd-bin-v1 (%llu blocks, seed %llu)\n",
                static_cast<unsigned long long>(reader.blockCount()),
                static_cast<unsigned long long>(reader.seed()));
  } else {
    const EventStream stream = loadAny(path);
    tally(stream.events());
    events = stream.size();
    nodes = stream.nodeCount();
    edges = stream.edgeCount();
    span = stream.lastTime();
  }
  std::printf("events:  %zu (%zu nodes, %zu edges)\n", events, nodes, edges);
  std::printf("span:    %.2f days\n", span);
  std::printf("origins: %zu main, %zu second, %zu post-merge\n", byOrigin[0],
              byOrigin[1], byOrigin[2]);
  return 0;
}

// Exit codes: 0 success, 2 for both malformed/corrupt input (the format
// battery asserts on this) and OS-level I/O failures — but the two are
// distinguished in the message: I/O errors carry the errno text
// ("I/O error: ... No such file or directory"), format errors describe
// the corruption.
int cmdConvert(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const std::string& in = args.positional[0];
  const std::string& out = args.positional[1];
  try {
    if (sniffFormat(in) == TraceFormat::kMsdbin) {
      // Streaming conversion: one decoded block in memory at a time.
      io::BinaryEventReader reader(in);
      obs::ProgressMeter progress(
          progressOptionsFor(args, "convert", reader.eventCount()));
      io::ProgressSource source(reader, progress);
      if (isMsdbinPath(out)) {
        io::BinaryLogOptions options;
        options.seed = reader.seed();
        options.manifestJson = reader.manifestJson();
        io::BinaryEventWriter writer(out, options);
        pumpEvents(source, writer);
        writer.close();
      } else if (isTextPath(out)) {
        event_io::TextEventWriter writer(out, reader.nodeCount(),
                                         reader.edgeCount());
        pumpEvents(source, writer);
        writer.close();
      } else {
        // The legacy writer needs the whole stream up front.
        saveAny(reader.readAll(), out);
        progress.add(reader.eventsConsumed());
      }
      progress.finish();
      std::printf("wrote %llu events to %s\n",
                  static_cast<unsigned long long>(reader.eventCount()),
                  out.c_str());
      return 0;
    }
    const EventStream stream = loadAny(in);
    saveAny(stream, out);
    std::printf("wrote %zu events to %s\n", stream.size(), out.c_str());
    return 0;
  } catch (const InputIoError& error) {
    std::fprintf(stderr, "msdyn convert: I/O error: %s\n", error.what());
    return 2;
  } catch (const std::runtime_error& error) {
    std::fprintf(stderr, "msdyn convert: invalid trace: %s\n", error.what());
    return 2;
  }
}

// Fig 1(c)-(f) series through the incremental engine; .msdbin inputs
// replay out-of-core (no EventStream materialization).
int cmdSeries(const Args& args) {
  if (args.positional.empty()) return usage();
  const std::string& path = args.positional[0];
  MetricsOverTimeConfig config;
  config.snapshotStep = args.getDouble("step", config.snapshotStep);
  config.pathEvery = args.getDouble("path-every", config.pathEvery);
  config.pathSamples = static_cast<std::size_t>(
      args.getU64("path-samples", config.pathSamples));
  config.clusteringSamples = static_cast<std::size_t>(
      args.getU64("clustering-samples", config.clusteringSamples));
  config.seed = args.getU64("series-seed", config.seed);

  Stopwatch watch;
  MetricsOverTime series;
  if (sniffFormat(path) == TraceFormat::kMsdbin) {
    io::BinaryEventReader reader(path);
    obs::ProgressMeter progress(
        progressOptionsFor(args, "series", reader.eventCount()));
    io::ProgressSource source(reader, progress);
    series = analyzeMetricsOverTime(source, reader.lastTime(), config);
    progress.finish();
  } else {
    const EventStream stream = loadAny(path);
    series = analyzeMetricsOverTime(stream, config);
  }
  std::printf("series: %zu snapshots in %.1fs\n", series.averageDegree.size(),
              watch.seconds());
  const char* csv = args.get("csv", nullptr);
  if (csv != nullptr) {
    const std::vector<TimeSeries> all = {
        series.averageDegree, series.averagePathLength,
        series.clusteringCoefficient, series.assortativity};
    writeSeriesCsv(csv, all);
    std::printf("wrote %s\n", csv);
    return 0;
  }
  if (!series.averageDegree.empty()) {
    std::printf("avg degree:    %.4f -> %.4f\n",
                series.averageDegree.valueAt(0),
                series.averageDegree.lastValue());
  }
  if (!series.clusteringCoefficient.empty()) {
    std::printf("clustering:    %.4f -> %.4f\n",
                series.clusteringCoefficient.valueAt(0),
                series.clusteringCoefficient.lastValue());
  }
  if (!series.assortativity.empty()) {
    std::printf("assortativity: %.4f -> %.4f\n",
                series.assortativity.valueAt(0),
                series.assortativity.lastValue());
  }
  if (!series.averagePathLength.empty()) {
    std::printf("path length:   %.4f -> %.4f\n",
                series.averagePathLength.valueAt(0),
                series.averagePathLength.lastValue());
  }
  return 0;
}

int cmdMetrics(const Args& args) {
  if (args.positional.empty()) return usage();
  const EventStream stream = loadAny(args.positional[0]);
  const double day = args.getDouble("day", stream.lastTime());
  const auto samples =
      static_cast<std::size_t>(args.getU64("samples", 24));

  Replayer replayer(stream);
  replayer.advanceTo(day + 1.0);
  const Graph& graph = replayer.graph().graph();
  Rng rng(7);
  const DegreeStats degrees = degreeStats(graph);
  const Components components = connectedComponents(graph);
  std::printf("snapshot at end of day %.0f\n", day);
  std::printf("  nodes / edges:   %zu / %zu\n", graph.nodeCount(),
              graph.edgeCount());
  std::printf("  average degree:  %.2f (max %zu, %zu isolated)\n",
              degrees.average, degrees.max, degrees.isolated);
  std::printf("  components:      %zu (largest %zu)\n", components.count,
              components.size[components.largest()]);
  std::printf("  clustering:      %.4f\n",
              sampledAverageClustering(graph, 500, rng));
  std::printf("  path length:     %.3f (sampled, %zu sources)\n",
              sampledAveragePathLength(graph, samples, rng), samples);
  std::printf("  assortativity:   %.4f\n", degreeAssortativity(graph));
  if (args.get("anf", nullptr) != nullptr) {
    const NeighborhoodFunction anf = neighborhoodFunction(graph);
    std::printf("  eff. diameter:   %.2f (ANF, 90%%)\n",
                anf.effectiveDiameter());
    std::printf("  mean distance:   %.3f (ANF)\n", anf.averageDistance());
  }
  return 0;
}

int cmdGrowth(const Args& args) {
  if (args.positional.empty()) return usage();
  const EventStream stream = loadAny(args.positional[0]);
  const GrowthSeries growth = analyzeGrowth(stream);
  const char* csv = args.get("csv", nullptr);
  if (csv != nullptr) {
    const std::vector<TimeSeries> series = {
        growth.newNodes, growth.newEdges, growth.totalNodes,
        growth.totalEdges, growth.nodeGrowthRate, growth.edgeGrowthRate};
    writeSeriesCsv(csv, series);
    std::printf("wrote %s\n", csv);
  } else {
    for (std::size_t i = 0; i < growth.totalNodes.size();
         i += std::max<std::size_t>(1, growth.totalNodes.size() / 20)) {
      std::printf("day %4.0f: %8.0f nodes %9.0f edges\n",
                  growth.totalNodes.timeAt(i), growth.totalNodes.valueAt(i),
                  growth.totalEdges.valueAtOrBefore(
                      growth.totalNodes.timeAt(i)));
    }
  }
  return 0;
}

int cmdCommunities(const Args& args) {
  if (args.positional.empty()) return usage();
  const EventStream stream = loadAny(args.positional[0]);
  CommunityAnalysisConfig config;
  config.louvain.delta = args.getDouble("delta", 0.04);
  config.snapshotStep = args.getDouble("step", 3.0);
  config.tracker.minCommunitySize =
      static_cast<std::size_t>(args.getU64("min-size", 10));
  Stopwatch watch;
  const CommunityAnalysisResult result = analyzeCommunities(stream, config);
  std::printf("pipeline: %zu snapshots in %.1fs\n", result.modularity.size(),
              watch.seconds());
  if (!result.modularity.empty()) {
    std::printf("modularity: first %.3f, last %.3f (min %.3f, max %.3f)\n",
                result.modularity.valueAt(0), result.modularity.lastValue(),
                result.modularity.minValue(), result.modularity.maxValue());
  }
  std::printf("tracked communities: %zu (%zu merge groups, %zu split "
              "groups)\n",
              result.lifetimes.size(), result.mergeRatios.size(),
              result.splitRatios.size());
  const MergePredictionResult prediction =
      evaluateMergePrediction(result.mergeSamples);
  if (prediction.testSize > 0) {
    std::printf("merge predictor: %.0f%% merge / %.0f%% no-merge accuracy "
                "on %zu samples\n",
                100.0 * prediction.mergeAccuracy,
                100.0 * prediction.noMergeAccuracy,
                result.mergeSamples.size());
  }
  return 0;
}

int cmdMerge(const Args& args) {
  if (args.positional.empty()) return usage();
  const EventStream stream = loadAny(args.positional[0]);
  MergeAnalysisConfig config;
  config.mergeDay = args.getDouble("merge-day", 386.0);
  config.activityWindow = args.getDouble("window", 94.0);
  const MergeAnalysisResult result = analyzeMerge(stream, config);
  std::printf("pre-merge users: %zu main, %zu second\n", result.mainUsers,
              result.secondUsers);
  std::printf("duplicates (inactive from day 0): %.1f%% main, %.1f%% "
              "second\n",
              100.0 * result.day0InactiveMain,
              100.0 * result.day0InactiveSecond);
  if (!result.activeMain.all.empty()) {
    std::printf("active main:   %.1f%% -> %.1f%%\n",
                result.activeMain.all.valueAt(0),
                result.activeMain.all.lastValue());
    std::printf("active second: %.1f%% -> %.1f%%\n",
                result.activeSecond.all.valueAt(0),
                result.activeSecond.all.lastValue());
  }
  if (!result.distanceSecondToMain.empty()) {
    std::printf("cross-OSN distance: %.2f -> %.2f hops\n",
                result.distanceSecondToMain.valueAt(0),
                result.distanceSecondToMain.lastValue());
  }
  return 0;
}

int cmdSlice(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const EventStream stream = loadAny(args.positional[0]);
  const double from = args.getDouble("from", 0.0);
  const double to = args.getDouble("to", stream.lastTime() + 1.0);
  const EventStream slice = stream_ops::sliceByTime(stream, from, to);
  saveAny(slice, args.positional[1]);
  std::printf("slice [%.1f, %.1f): %zu nodes, %zu edges -> %s\n", from, to,
              slice.nodeCount(), slice.edgeCount(),
              args.positional[1].c_str());
  return 0;
}

int cmdExportTemporal(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const EventStream stream = loadAny(args.positional[0]);
  event_io::saveTemporalEdgeListFile(stream, args.positional[1]);
  std::printf("wrote %zu temporal edges to %s\n", stream.edgeCount(),
              args.positional[1].c_str());
  return 0;
}

// Generates one scenario's trace and measures its report.
scenario::ScenarioReport measureScenario(const scenario::ScenarioPreset& preset,
                                         scenario::Scale scale,
                                         std::uint64_t seed,
                                         std::span<const scenario::Override>
                                             extra,
                                         EventStream* streamOut) {
  const GeneratorConfig config =
      scenario::configFor(preset, scale, seed, extra);
  TraceGenerator generator(config);
  EventStream stream = generator.generate();
  scenario::ScenarioReport report = scenario::computeReport(stream, config);
  if (streamOut != nullptr) *streamOut = std::move(stream);
  return report;
}

// Exit codes: 0 run + assertions pass, 1 assertion failure, 2 parse error
// (unknown preset/scale, malformed or out-of-range --set override).
int cmdScenario(const Args& args) {
  if (args.positional.empty()) return usage();
  const std::string& verb = args.positional[0];

  if (verb == "list") {
    for (const scenario::ScenarioPreset& preset : scenario::allPresets()) {
      std::printf("%-18s %s\n", preset.name.c_str(), preset.regime.c_str());
    }
    return 0;
  }

  if (verb == "describe") {
    if (args.positional.size() < 2) return usage();
    try {
      const scenario::ScenarioPreset& preset =
          scenario::presetOrThrow(args.positional[1]);
      std::printf("%s\n", scenario::presetJson(preset).dump(2).c_str());
      return 0;
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "msdyn scenario: %s\n", error.what());
      return 2;
    }
  }

  if (verb != "run") {
    std::fprintf(stderr,
                 "msdyn scenario: unknown subcommand '%s' (known: list, "
                 "describe, run)\n",
                 verb.c_str());
    return 2;
  }
  if (args.positional.size() < 2) return usage();

  // Parse phase: anything wrong with the request itself exits 2.
  const scenario::ScenarioPreset* preset = nullptr;
  scenario::Scale scale = scenario::Scale::kTiny;
  std::vector<scenario::Override> extra;
  GeneratorConfig config;
  const std::uint64_t seed = args.getU64("seed", 1);
  try {
    preset = &scenario::presetOrThrow(args.positional[1]);
    scale = scenario::parseScale(args.get("scale", "tiny"));
    for (const auto& [key, value] : args.options) {
      if (key == "set") extra.push_back(scenario::parseOverride(value));
    }
    config = scenario::configFor(*preset, scale, seed, extra);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "msdyn scenario: %s\n", error.what());
    return 2;
  }

  obs::setManifestSeed(static_cast<std::int64_t>(seed));
  const std::string outDir = args.get("out", "scenario_out");
  std::error_code ec;
  std::filesystem::create_directories(outDir, ec);
  if (ec) {
    std::fprintf(stderr, "msdyn scenario: cannot create %s: %s\n",
                 outDir.c_str(), ec.message().c_str());
    return 2;
  }

  Stopwatch watch;
  TraceGenerator generator(config);
  const EventStream stream = generator.generate();
  {
    obs::ProgressMeter progress(
        progressOptionsFor(args, "scenario", stream.size()));
    progress.add(stream.size());
  }
  std::printf("%s @ %s seed %llu: %zu nodes / %zu edges over %.0f days in "
              "%.1fs\n",
              preset->name.c_str(), scenario::scaleName(scale),
              static_cast<unsigned long long>(seed), stream.nodeCount(),
              stream.edgeCount(), stream.lastTime(), watch.seconds());
  const char* savePath = args.get("save-trace", nullptr);
  if (savePath != nullptr) {
    saveAny(stream, savePath);
    std::printf("trace -> %s\n", savePath);
  }

  const scenario::ScenarioReport report =
      scenario::computeReport(stream, config);

  // Growth series into the standard CSV artifact writer.
  const GrowthSeries growth = analyzeGrowth(stream);
  const std::string csvPath = outDir + "/" + preset->name + "_growth.csv";
  const std::vector<TimeSeries> series = {
      growth.newNodes, growth.newEdges, growth.totalNodes, growth.totalEdges};
  writeSeriesCsv(csvPath, series);

  obs::Json json = obs::Json::object();
  json.set("schema", "msd-scenario-v1");
  json.set("scenario", preset->name);
  json.set("scale", scenario::scaleName(scale));
  json.set("seed", seed);
  obs::Json metricsJson = obs::Json::object();
  for (const auto& [name, value] : report.metrics()) {
    metricsJson.set(name, value);
  }
  json.set("metrics", std::move(metricsJson));

  bool allPassed = true;
  if (args.get("no-assert", nullptr) == nullptr) {
    // Reference expectations compare against other presets' reports;
    // measure each referenced preset once, same scale and seed.
    std::map<std::string, scenario::ScenarioReport> all;
    all.emplace(preset->name, report);
    for (const scenario::ScenarioExpectation& expectation :
         preset->expectations) {
      if (expectation.refScenario.empty() ||
          all.count(expectation.refScenario) != 0) {
        continue;
      }
      std::printf("measuring reference scenario '%s'...\n",
                  expectation.refScenario.c_str());
      all.emplace(expectation.refScenario,
                  measureScenario(
                      scenario::presetOrThrow(expectation.refScenario), scale,
                      seed, {}, nullptr));
    }
    obs::Json outcomes = obs::Json::array();
    for (const scenario::ScenarioExpectation& expectation :
         preset->expectations) {
      const scenario::ExpectationOutcome outcome =
          scenario::evaluate(expectation, report, all);
      allPassed = allPassed && outcome.passed;
      std::printf("  %s\n", outcome.text.c_str());
      obs::Json entry = obs::Json::object();
      entry.set("check", scenario::describe(expectation));
      entry.set("passed", outcome.passed);
      entry.set("measured", outcome.lhs);
      entry.set("bound", outcome.rhs);
      outcomes.push(std::move(entry));
    }
    json.set("expectations", std::move(outcomes));
    json.set("passed", allPassed);
  }

  const std::string reportPath = outDir + "/" + preset->name + "_report.json";
  {
    std::ofstream file(reportPath);
    if (!file) throw std::runtime_error("cannot write " + reportPath);
    file << json.dump(2) << "\n";
  }
  std::printf("report -> %s, growth csv -> %s\n", reportPath.c_str(),
              csvPath.c_str());
  return allPassed ? 0 : 1;
}

// Quick-look over an msd-stats-v1 JSONL artifact. Exit codes: 0 valid,
// 2 for malformed input (unreadable file, bad schema, non-monotone
// timestamps) — same contract as the other format-validating commands.
int cmdStats(const Args& args) {
  if (args.positional.size() < 2 || args.positional[0] != "summarize") {
    return usage();
  }
  try {
    const obs::StatsSeries series = obs::parseStatsFile(args.positional[1]);
    std::fputs(obs::statsSummaryText(series).c_str(), stdout);
    return 0;
  } catch (const std::runtime_error& error) {
    std::fprintf(stderr, "msdyn stats: %s\n", error.what());
    return 2;
  }
}

}  // namespace

int runCommand(const std::string& command, const Args& args) {
  if (command == "generate") return cmdGenerate(args);
  if (command == "info") return cmdInfo(args);
  if (command == "convert") return cmdConvert(args);
  if (command == "series") return cmdSeries(args);
  if (command == "metrics") return cmdMetrics(args);
  if (command == "growth") return cmdGrowth(args);
  if (command == "communities") return cmdCommunities(args);
  if (command == "merge") return cmdMerge(args);
  if (command == "slice") return cmdSlice(args);
  if (command == "export-temporal") return cmdExportTemporal(args);
  if (command == "scenario") return cmdScenario(args);
  if (command == "stats") return cmdStats(args);
  return usage();
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse(argc, argv);
  const char* traceJson = args.get("trace-json", nullptr);
  const char* traceEvents = args.get("trace-events", nullptr);
  // Run-side provenance: every artifact this process writes (obs report,
  // trace events) carries the full command line and thread count.
  // Commands that take a seed refine the manifest's seed themselves.
  obs::setManifestArgs(std::vector<std::string>(argv + 1, argv + argc));
  obs::setManifestThreads(static_cast<std::int64_t>(threadCount()));
  obs::setThreadLabel("main");
  const std::uint64_t traceBufferCap = args.getU64("trace-buffer-cap", 0);
  if (traceBufferCap > 0) {
    obs::setEventBufferCapacity(static_cast<std::size_t>(traceBufferCap));
  }
  if (traceEvents != nullptr) obs::setEventRecording(true);
  // Live telemetry: the sampler thread starts before the command and
  // snapshots counters/gauges/histograms on a fixed cadence. It only
  // reads relaxed atomics — primary artifacts are bit-identical with or
  // without it (the determinism contract, asserted in the test suite).
  const char* statsJson = args.get("stats-json", nullptr);
  std::unique_ptr<obs::StatsSampler> sampler;
  if (statsJson != nullptr) {
    obs::StatsSamplerOptions statsOptions;
    statsOptions.jsonlPath = statsJson;
    statsOptions.intervalNanos =
        args.getU64("stats-interval-ms", 100) * 1'000'000;
    try {
      sampler = std::make_unique<obs::StatsSampler>(std::move(statsOptions));
    } catch (const std::exception& error) {
      std::fprintf(stderr, "msdyn: %s\n", error.what());
      return 1;
    }
  }
  int status = 0;
  try {
    status = runCommand(command, args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "msdyn %s: %s\n", command.c_str(), error.what());
    status = 1;
  }
  if (sampler != nullptr) {
    sampler->stop();  // final sample + flush before any trace export
    std::fprintf(stderr, "stats -> %s\n", statsJson);
  }
  // Sample the process memory high-water mark so every obs artifact the
  // CLI writes reports it alongside the counters.
  obs::updateMemoryGauges();
  if (traceJson != nullptr) {
    try {
      obs::writeSnapshotFile(traceJson);
      std::fprintf(stderr, "trace report -> %s\n", traceJson);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "msdyn: %s\n", error.what());
      if (status == 0) status = 1;
    }
  }
  if (traceEvents != nullptr) {
    try {
      obs::writeTraceEventsFile(traceEvents);
      std::fprintf(stderr, "trace events -> %s\n", traceEvents);
      // Drops used to be visible only inside the exported JSON's
      // otherData; surface them where the user is looking.
      const std::uint64_t dropped = obs::droppedEventCount();
      if (dropped > 0) {
        std::fprintf(stderr,
                     "msdyn: warning: %llu trace events dropped (ring "
                     "buffers full; raise --trace-buffer-cap)\n",
                     static_cast<unsigned long long>(dropped));
      }
    } catch (const std::exception& error) {
      std::fprintf(stderr, "msdyn: %s\n", error.what());
      if (status == 0) status = 1;
    }
  }
  return status;
}
