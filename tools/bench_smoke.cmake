# Runs every figure bench at --scale=tiny into one shared output
# directory, then schema-validates the emitted BENCH_*.json set with
# bench_compare --validate. Driven by the `bench_smoke` ctest entry and
# custom target (see bench/CMakeLists.txt).
#
# Required -D variables:
#   BENCH_DIR   directory holding the fig*_ bench binaries
#   COMPARE     path to the bench_compare binary
#   OUT_DIR     scratch directory for traces + BENCH_*.json

foreach(var BENCH_DIR COMPARE OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_smoke: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")

set(benches
  fig1_network_metrics
  fig2_edge_dynamics
  fig3_pref_attach
  fig4_delta_sensitivity
  fig5_community_stats
  fig6_merge_split
  fig7_user_activity
  fig8_merge_activity
  fig9_merge_distance
  scenario_suite
)

foreach(bench ${benches})
  message(STATUS "bench_smoke: ${bench} --scale=tiny")
  execute_process(
    COMMAND "${BENCH_DIR}/${bench}" --scale=tiny --seed=1 "--out=${OUT_DIR}"
    RESULT_VARIABLE status
    OUTPUT_QUIET
  )
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "bench_smoke: ${bench} failed (exit ${status})")
  endif()
endforeach()

execute_process(
  COMMAND "${COMPARE}" --validate "${OUT_DIR}"
  RESULT_VARIABLE status
)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "bench_smoke: bench_compare --validate failed "
                      "(exit ${status})")
endif()
message(STATUS "bench_smoke: all reports valid")
