# Committed-baseline bench harness. Runs the figure benches under pinned
# determinism conditions (MSD_THREADS=2, --scale=tiny --seed=1 --reps=2,
# fresh output directory so the trace cache state is identical on every
# run) and either records the resulting BENCH_*.json set as the committed
# baseline or compares the fresh run against it with bench_compare.
#
# The gate is the counters, not the wall times: counters are exact
# (--counter-threshold=0, scheduling-dependent pool.* excluded), while
# the wall threshold defaults to effectively-off because CI wall clocks
# are noise. tools/check.sh --bench tightens the wall threshold.
#
# Required -D variables:
#   BENCH_DIR     directory holding the fig*_ bench binaries
#   COMPARE       path to the bench_compare binary
#   OUT_DIR       scratch directory, wiped before the run
#   BASELINE_DIR  committed baseline directory (bench_out/baseline)
#   MODE          record | compare
# Optional:
#   THRESHOLD     wall-time regression fraction (default 1000000 = off)

foreach(var BENCH_DIR COMPARE OUT_DIR BASELINE_DIR MODE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_baseline: missing -D${var}=...")
  endif()
endforeach()
if(NOT DEFINED THRESHOLD)
  set(THRESHOLD 1000000)
endif()
if(NOT MODE STREQUAL "record" AND NOT MODE STREQUAL "compare")
  message(FATAL_ERROR "bench_baseline: MODE must be record or compare, "
                      "got '${MODE}'")
endif()

# A stale trace cache flips gen.* counters to stream.* ones, so the run
# must always start from an empty directory.
file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

# Fixed order: the first bench generates the trace, the rest load the
# cache — reordering would shuffle which report carries the gen.* set.
set(benches
  fig1_network_metrics
  fig2_edge_dynamics
  fig3_pref_attach
  fig4_delta_sensitivity
  fig5_community_stats
  fig6_merge_split
  fig7_user_activity
  fig8_merge_activity
  fig9_merge_distance
  scenario_suite
)

foreach(bench ${benches})
  message(STATUS "bench_baseline: ${bench} (tiny, seed=1, 2 threads)")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env MSD_THREADS=2
            "${BENCH_DIR}/${bench}" --scale=tiny --seed=1 --reps=2
            "--out=${OUT_DIR}"
    RESULT_VARIABLE status
    OUTPUT_QUIET
  )
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "bench_baseline: ${bench} failed (exit ${status})")
  endif()
endforeach()

if(MODE STREQUAL "record")
  execute_process(
    COMMAND "${COMPARE}" --validate "${OUT_DIR}"
    RESULT_VARIABLE status
  )
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "bench_baseline: fresh reports failed validation "
                        "(exit ${status})")
  endif()
  file(REMOVE_RECURSE "${BASELINE_DIR}")
  file(MAKE_DIRECTORY "${BASELINE_DIR}")
  file(GLOB reports "${OUT_DIR}/BENCH_*.json")
  foreach(report ${reports})
    file(COPY "${report}" DESTINATION "${BASELINE_DIR}")
  endforeach()
  list(LENGTH reports count)
  message(STATUS "bench_baseline: recorded ${count} report(s) into "
                 "${BASELINE_DIR}")
else()
  if(NOT EXISTS "${BASELINE_DIR}")
    message(FATAL_ERROR "bench_baseline: no committed baseline at "
                        "${BASELINE_DIR}; run the bench_baseline_record "
                        "target first")
  endif()
  execute_process(
    COMMAND "${COMPARE}" "--threshold=${THRESHOLD}" --counter-threshold=0
            --counter-ignore=pool. "${BASELINE_DIR}" "${OUT_DIR}"
    RESULT_VARIABLE status
  )
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "bench_baseline: drift against committed baseline "
                        "(exit ${status})")
  endif()
  message(STATUS "bench_baseline: fresh run matches committed baseline")
endif()
