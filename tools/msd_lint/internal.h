#pragma once

// Shared internals of the msd_lint passes: the per-file scan state, the
// small string utilities every pass uses, and the declarations of the
// flow-aware passes (H6-H9, lint_flow_passes.cpp) so lint.cpp can invoke
// them from scanFiles(). Not part of the public API (lint.h) — tests
// reach this layer only through scanFiles()/scanTree().

#include <cctype>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "msd_lint/lint.h"

namespace msd::lint::internal {

// ---------------------------------------------------------------------------
// String utilities (offset-preserving; all passes operate on the
// comment/string-stripped text so byte offsets map to line numbers).

inline bool isWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

inline bool startsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

inline bool endsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string trim(const std::string& s);

/// Collapses "." and ".." components and backslashes so resolved include
/// paths compare equal to the scanner's root-relative paths.
std::string normalizePath(const std::string& path);

std::string dirName(const std::string& path);

/// Finds the offset of the `close` matching the opener at `open`.
/// Returns npos when unbalanced.
std::size_t findMatching(const std::string& text, std::size_t open,
                         char openCh, char closeCh);

/// All offsets where `word` occurs with word boundaries on both sides.
std::vector<std::size_t> findWord(const std::string& text,
                                  const std::string& word);

std::size_t skipSpaces(const std::string& text, std::size_t pos);

/// Last non-whitespace character strictly before `pos` ('\0' when none).
char prevNonSpace(const std::string& text, std::size_t pos);

/// The identifier ending at the last non-space position before `pos`
/// (empty when the preceding token is not an identifier).
std::string prevWord(const std::string& text, std::size_t pos);

/// Identifiers (excluding leading-digit tokens) in `text`, in order.
std::vector<std::string> identifiersIn(const std::string& text);

// ---------------------------------------------------------------------------
// Path predicates shared by the passes.

/// The pool implementation files (src/util/parallel.h/.cpp) — the one
/// place allowed to touch raw threads and worker state.
inline bool isParallelUtil(const std::string& path) {
  return startsWith(path, "src/util/parallel.");
}

inline bool isObs(const std::string& path) {
  return startsWith(path, "src/obs/");
}

inline bool isBench(const std::string& path) {
  return startsWith(path, "bench/");
}

/// src/io/wire.h/.cpp: the checked-reader layer itself, exempt from H7
/// the same way parallel.* is exempt from H5 — it is the one place raw
/// byte access is allowed, and it owns the bounds contract.
inline bool isWireLayer(const std::string& path) {
  return startsWith(path, "src/io/wire.");
}

inline bool isIoLayer(const std::string& path) {
  return startsWith(path, "src/io/");
}

// ---------------------------------------------------------------------------
// Per-file state shared by the hazard passes.

struct FileInfo {
  std::string path;
  std::string original;
  std::string stripped;
  std::vector<std::size_t> lineStarts;  ///< offset of each line's first byte
  std::vector<std::string> quotedIncludes;  ///< raw `#include "..."` names
  std::vector<std::string> systemIncludes;  ///< raw `#include <...>` names
  /// line -> (hazard, reason) from inline msd-lint comments; the hazard
  /// "H1" entry is produced by ordered-ok.
  std::map<std::size_t, std::pair<std::string, std::string>> inlineAllows;
  std::vector<std::string> resolvedIncludes;  ///< root-relative, in-tree
  bool outputRelevant = false;
};

std::size_t lineOf(const FileInfo& info, std::size_t offset);

void pushFinding(const FileInfo& info, std::size_t offset,
                 const std::string& hazard, const std::string& message,
                 std::vector<Finding>& findings);

/// Names declared in `stripped` with an unordered container type, mapped
/// to their declaration offsets. Shared by H1 and H9.
std::map<std::string, std::vector<std::size_t>> collectUnorderedNames(
    const std::string& stripped);

// ---------------------------------------------------------------------------
// Flow-aware passes (lint_flow_passes.cpp).

/// H6: shared-state writes inside parallelFor/parallelForChunks/pool.run
/// lambdas without a disjoint-index, atomic, or partial-buffer idiom.
/// `findings` is consulted so sites H3 already reported are not doubled.
void scanH6(const FileInfo& info, std::vector<Finding>& findings);

/// H7: raw byte reads in src/io/ not dominated by a length/remaining
/// check and not routed through the checked wire.h readers. Byte-pointer
/// names are also collected from the companion header via `byPath`.
void scanH7(const FileInfo& info,
            const std::map<std::string, const FileInfo*>& byPath,
            std::vector<Finding>& findings);

/// Names of tree-declared functions whose return value carries
/// success/failure (bool/Expected/std::error_code returns with
/// parse/read/open/write/load/save/decode/try names).
std::set<std::string> collectErrorBearers(const std::vector<FileInfo>& files);

/// H8: discarded error-bearing results — statement-position calls to
/// `errorBearers` and `std::error_code` locals that are never examined.
void scanH8(const FileInfo& info, const std::set<std::string>& errorBearers,
            std::vector<Finding>& findings);

/// H9: nondeterministic ordering sinks in output-relevant files —
/// sorting/comparing by pointer value and unordered-container extraction
/// that is never sorted before use.
void scanH9(const FileInfo& info, std::vector<Finding>& findings);

}  // namespace msd::lint::internal
