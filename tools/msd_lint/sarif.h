#pragma once

// SARIF 2.1.0 rendering of lint findings, for editor/CI integration
// (`msd_lint --format=sarif`). The document is fully deterministic:
// fixed rule table, findings in scan order, stable two-space layout.

#include <string>
#include <vector>

#include "msd_lint/lint.h"

namespace msd::lint {

/// Renders findings as one SARIF 2.1.0 run. Every hazard class H1-H9
/// appears in the rule table regardless of whether it fired; suppressed
/// findings carry a `suppressions` entry (kind "inSource") so SARIF
/// consumers hide them by default. Ends with a trailing newline.
std::string toSarif(const std::vector<Finding>& findings);

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Exposed for tests.
std::string jsonEscape(const std::string& s);

}  // namespace msd::lint
