#include "msd_lint/sarif.h"

#include <array>
#include <cstdio>
#include <sstream>

namespace msd::lint {

namespace {

struct RuleMeta {
  const char* id;
  const char* shortDescription;
};

// Fixed rule table: indices are stable so ruleIndex stays meaningful
// across runs even when a class never fires.
constexpr std::array<RuleMeta, 9> kRules = {{
    {"H1", "Unordered-container iteration in an output-relevant file"},
    {"H2", "Banned nondeterminism source (rand/random_device/clock)"},
    {"H3", "By-reference floating-point accumulation in a pool lambda"},
    {"H4", "Thread identity (thread_local/get_id) outside the pool"},
    {"H5", "Raw thread construction outside src/util/parallel.*"},
    {"H6", "Shared-state write in a pool lambda without a safe idiom"},
    {"H7", "Raw wire-parse byte access without a dominating bounds check"},
    {"H8", "Discarded error-bearing result"},
    {"H9", "Nondeterministic ordering sink (pointer order / unordered "
           "extraction)"},
}};

int ruleIndexOf(const std::string& hazard) {
  for (std::size_t i = 0; i < kRules.size(); ++i) {
    if (hazard == kRules[i].id) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string toSarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n";
  out << "  \"version\": \"2.1.0\",\n";
  out << "  \"runs\": [\n";
  out << "    {\n";
  out << "      \"tool\": {\n";
  out << "        \"driver\": {\n";
  out << "          \"name\": \"msd_lint\",\n";
  out << "          \"version\": \"2.0.0\",\n";
  out << "          \"informationUri\": "
         "\"https://example.invalid/msd_lint\",\n";
  out << "          \"rules\": [\n";
  for (std::size_t i = 0; i < kRules.size(); ++i) {
    out << "            {\n";
    out << "              \"id\": \"" << kRules[i].id << "\",\n";
    out << "              \"shortDescription\": {\"text\": \""
        << jsonEscape(kRules[i].shortDescription) << "\"}\n";
    out << "            }" << (i + 1 < kRules.size() ? "," : "") << "\n";
  }
  out << "          ]\n";
  out << "        }\n";
  out << "      },\n";
  out << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "        {\n";
    out << "          \"ruleId\": \"" << jsonEscape(f.hazard) << "\",\n";
    const int ruleIndex = ruleIndexOf(f.hazard);
    if (ruleIndex >= 0) {
      out << "          \"ruleIndex\": " << ruleIndex << ",\n";
    }
    out << "          \"level\": \"error\",\n";
    out << "          \"message\": {\"text\": \"" << jsonEscape(f.message)
        << "\"},\n";
    out << "          \"locations\": [\n";
    out << "            {\n";
    out << "              \"physicalLocation\": {\n";
    out << "                \"artifactLocation\": {\"uri\": \""
        << jsonEscape(f.file) << "\", \"uriBaseId\": \"SRCROOT\"},\n";
    out << "                \"region\": {\"startLine\": " << f.line << "}\n";
    out << "              }\n";
    out << "            }\n";
    out << "          ]";
    if (f.suppressed) {
      out << ",\n          \"suppressions\": [\n";
      out << "            {\"kind\": \"inSource\", \"justification\": \""
          << jsonEscape(f.suppressReason) << "\"}\n";
      out << "          ]\n";
    } else {
      out << "\n";
    }
    out << "        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n";
  out << "    }\n";
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

}  // namespace msd::lint
