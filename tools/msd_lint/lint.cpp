#include "msd_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "msd_lint/internal.h"

namespace msd::lint {

// ---------------------------------------------------------------------------
// Shared internals (declared in internal.h, used by the flow passes too).
// ---------------------------------------------------------------------------

namespace internal {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::string normalizePath(const std::string& path) {
  std::vector<std::string> parts;
  std::string part;
  std::string cleaned = path;
  std::replace(cleaned.begin(), cleaned.end(), '\\', '/');
  std::istringstream in(cleaned);
  while (std::getline(in, part, '/')) {
    if (part.empty() || part == ".") continue;
    if (part == ".." && !parts.empty() && parts.back() != "..") {
      parts.pop_back();
      continue;
    }
    parts.push_back(part);
  }
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += '/';
    out += parts[i];
  }
  return out;
}

std::string dirName(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::size_t findMatching(const std::string& text, std::size_t open,
                         char openCh, char closeCh) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == openCh) {
      ++depth;
    } else if (text[i] == closeCh) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

std::vector<std::size_t> findWord(const std::string& text,
                                  const std::string& word) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool leftOk = pos == 0 || !isWordChar(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool rightOk = end >= text.size() || !isWordChar(text[end]);
    if (leftOk && rightOk) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

std::size_t skipSpaces(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

char prevNonSpace(const std::string& text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(text[pos])) == 0) {
      return text[pos];
    }
  }
  return '\0';
}

std::string prevWord(const std::string& text, std::size_t pos) {
  while (pos > 0 &&
         std::isspace(static_cast<unsigned char>(text[pos - 1])) != 0) {
    --pos;
  }
  std::size_t end = pos;
  while (pos > 0 && isWordChar(text[pos - 1])) --pos;
  return text.substr(pos, end - pos);
}

std::vector<std::string> identifiersIn(const std::string& text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (isWordChar(text[i]) &&
        std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
      const std::size_t start = i;
      while (i < text.size() && isWordChar(text[i])) ++i;
      out.push_back(text.substr(start, i - start));
    } else {
      ++i;
    }
  }
  return out;
}

std::size_t lineOf(const FileInfo& info, std::size_t offset) {
  const auto it = std::upper_bound(info.lineStarts.begin(),
                                   info.lineStarts.end(), offset);
  return static_cast<std::size_t>(it - info.lineStarts.begin());
}

void pushFinding(const FileInfo& info, std::size_t offset,
                 const std::string& hazard, const std::string& message,
                 std::vector<Finding>& findings) {
  Finding f;
  f.file = info.path;
  f.line = lineOf(info, offset);
  f.hazard = hazard;
  f.message = message;
  findings.push_back(std::move(f));
}

/// Names declared in this file with an unordered container type, mapped to
/// their declaration offsets (functions returning unordered containers
/// count too: iterating their result is just as order-hazardous).
std::map<std::string, std::vector<std::size_t>> collectUnorderedNames(
    const std::string& stripped) {
  std::map<std::string, std::vector<std::size_t>> names;
  static const char* kTypes[] = {"unordered_map", "unordered_set",
                                 "unordered_multimap", "unordered_multiset"};
  for (const char* type : kTypes) {
    for (std::size_t pos : findWord(stripped, type)) {
      std::size_t cursor = skipSpaces(stripped, pos + std::string(type).size());
      if (cursor >= stripped.size() || stripped[cursor] != '<') continue;
      const std::size_t close = findMatching(stripped, cursor, '<', '>');
      if (close == std::string::npos) continue;
      cursor = skipSpaces(stripped, close + 1);
      // Skip ref/pointer/const decorations between type and name.
      while (cursor < stripped.size() &&
             (stripped[cursor] == '&' || stripped[cursor] == '*')) {
        cursor = skipSpaces(stripped, cursor + 1);
      }
      const std::size_t nameStart = cursor;
      while (cursor < stripped.size() && isWordChar(stripped[cursor])) {
        ++cursor;
      }
      if (cursor == nameStart) continue;
      names[stripped.substr(nameStart, cursor - nameStart)].push_back(pos);
    }
  }
  return names;
}

}  // namespace internal

namespace {

using namespace internal;

namespace fs = std::filesystem;

/// True for src/util/stopwatch.h, the sanctioned coarse-progress wrapper
/// over the obs monotonic clock.
bool isStopwatch(const std::string& path) {
  return path == "src/util/stopwatch.h" || endsWith(path, "/stopwatch.h");
}

void parseDirectives(FileInfo& info) {
  std::istringstream in(info.original);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::string t = trim(line);
    if (t.size() > 0 && t[0] == '#') {
      std::size_t pos = skipSpaces(t, 1);
      if (t.compare(pos, 7, "include") == 0) {
        pos = skipSpaces(t, pos + 7);
        if (pos < t.size() && (t[pos] == '"' || t[pos] == '<')) {
          const char closeCh = t[pos] == '"' ? '"' : '>';
          const std::size_t close = t.find(closeCh, pos + 1);
          if (close != std::string::npos) {
            const std::string name = t.substr(pos + 1, close - pos - 1);
            (closeCh == '"' ? info.quotedIncludes : info.systemIncludes)
                .push_back(name);
          }
        }
      }
    }
    const std::size_t marker = line.find("msd-lint:");
    if (marker != std::string::npos) {
      const std::size_t comment = line.rfind("//", marker);
      if (comment == std::string::npos) continue;  // not in a // comment
      std::string rest = trim(line.substr(marker + 9));
      if (startsWith(rest, "ordered-ok(")) {
        const std::size_t close = rest.rfind(')');
        if (close != std::string::npos && close > 11) {
          info.inlineAllows[lineNo] = {"H1",
                                       trim(rest.substr(11, close - 11))};
        }
      } else if (startsWith(rest, "allow(")) {
        const std::size_t close = rest.rfind(')');
        const std::size_t colon = rest.find(':');
        if (close != std::string::npos && colon != std::string::npos &&
            colon < close) {
          const std::string hazard = trim(rest.substr(6, colon - 6));
          const std::string reason =
              trim(rest.substr(colon + 1, close - colon - 1));
          if (hazard.size() == 2 && hazard[0] == 'H' && hazard[1] >= '1' &&
              hazard[1] <= '9') {
            info.inlineAllows[lineNo] = {hazard, reason};
          }
        }
      }
    }
  }
}

void computeLineStarts(FileInfo& info) {
  info.lineStarts.push_back(0);
  for (std::size_t i = 0; i < info.original.size(); ++i) {
    if (info.original[i] == '\n') info.lineStarts.push_back(i + 1);
  }
}

/// System headers whose presence marks a translation unit as producing
/// serialized output.
bool isOutputSystemHeader(const std::string& name) {
  static const std::set<std::string> kHeaders = {
      "cstdio", "stdio.h", "iostream", "fstream", "ostream", "print"};
  return kHeaders.count(name) > 0;
}

/// Repo headers that constitute the serialization layer.
bool isRepoOutputHeader(const std::string& path) {
  static const std::vector<std::string> kSuffixes = {
      "io/csv.h", "io/event_io.h", "io/graph_io.h",
      "obs/json.h", "obs/registry.h"};
  for (const std::string& suffix : kSuffixes) {
    if (endsWith(path, suffix)) return true;
  }
  return false;
}

/// A file is a direct sink when it (a) includes a serialization system
/// header, (b) is part of the repo's io/obs serialization layer, or
/// (c) performs ordered reductions itself (parallelReduce).
bool isDirectSink(const FileInfo& info) {
  for (const std::string& name : info.systemIncludes) {
    if (isOutputSystemHeader(name)) return true;
  }
  if (isRepoOutputHeader(info.path)) return true;
  return !findWord(info.stripped, "parallelReduce").empty();
}

/// Resolves a quoted include against the in-tree file set: relative to
/// the including file's directory, then against the repo-style include
/// roots (src/, bench/, tools/, and the tree root).
std::vector<std::string> resolveIncludes(
    const FileInfo& info, const std::set<std::string>& knownPaths) {
  std::vector<std::string> resolved;
  const std::string dir = dirName(info.path);
  for (const std::string& name : info.quotedIncludes) {
    const std::string candidates[] = {
        normalizePath(dir.empty() ? name : dir + "/" + name),
        normalizePath("src/" + name), normalizePath(name),
        normalizePath("bench/" + name), normalizePath("tools/" + name)};
    for (const std::string& candidate : candidates) {
      if (knownPaths.count(candidate) > 0) {
        resolved.push_back(candidate);
        break;
      }
    }
  }
  return resolved;
}

/// Transitive include closure (excluding `start` itself).
std::set<std::string> includeClosure(
    const std::string& start,
    const std::map<std::string, const FileInfo*>& byPath) {
  std::set<std::string> seen;
  std::vector<std::string> stack = {start};
  while (!stack.empty()) {
    const std::string current = stack.back();
    stack.pop_back();
    const auto it = byPath.find(current);
    if (it == byPath.end()) continue;
    for (const std::string& next : it->second->resolvedIncludes) {
      if (seen.insert(next).second) stack.push_back(next);
    }
  }
  seen.erase(start);
  return seen;
}

/// Marks every file belonging to a translation unit that serializes or
/// reduces output. Propagates through the include graph to a fixpoint and
/// pairs each .cpp with its companion header.
void computeOutputRelevance(std::vector<FileInfo>& files) {
  std::map<std::string, const FileInfo*> byPath;
  for (FileInfo& info : files) byPath[info.path] = &info;

  std::map<std::string, std::set<std::string>> closures;
  std::set<std::string> marked;
  for (FileInfo& info : files) {
    closures[info.path] = includeClosure(info.path, byPath);
    if (isDirectSink(info)) marked.insert(info.path);
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (FileInfo& info : files) {
      const std::set<std::string>& closure = closures[info.path];
      bool relevant = marked.count(info.path) > 0;
      if (!relevant) {
        for (const std::string& dep : closure) {
          if (marked.count(dep) > 0) {
            relevant = true;
            break;
          }
        }
      }
      if (relevant) {
        // The whole TU participates in producing that output.
        if (marked.insert(info.path).second) changed = true;
        for (const std::string& dep : closure) {
          if (marked.insert(dep).second) changed = true;
        }
      }
    }
    // A .cpp inherits relevance from its companion header and vice versa:
    // the implementation computes the values the header's consumers print.
    for (FileInfo& info : files) {
      std::string companion;
      if (endsWith(info.path, ".cpp")) {
        companion = info.path.substr(0, info.path.size() - 4) + ".h";
      } else if (endsWith(info.path, ".h")) {
        companion = info.path.substr(0, info.path.size() - 2) + ".cpp";
      }
      if (!companion.empty() && byPath.count(companion) > 0) {
        const bool either =
            marked.count(info.path) > 0 || marked.count(companion) > 0;
        if (either && marked.insert(info.path).second) changed = true;
        if (either && marked.insert(companion).second) changed = true;
      }
    }
  }
  for (FileInfo& info : files) {
    info.outputRelevant = marked.count(info.path) > 0;
  }
}

// ---------------------------------------------------------------------------
// H1: unordered-container iteration in output-relevant files.
// ---------------------------------------------------------------------------

void scanH1(const FileInfo& info, std::vector<Finding>& findings) {
  if (!info.outputRelevant) return;
  const auto unorderedNames = collectUnorderedNames(info.stripped);
  if (unorderedNames.empty()) return;
  for (std::size_t pos : findWord(info.stripped, "for")) {
    const std::size_t open = skipSpaces(info.stripped, pos + 3);
    if (open >= info.stripped.size() || info.stripped[open] != '(') continue;
    const std::size_t close = findMatching(info.stripped, open, '(', ')');
    if (close == std::string::npos) continue;
    const std::string header = info.stripped.substr(open + 1, close - open - 1);
    // Range-for: a top-level ':' that is not part of '::'.
    std::size_t colon = std::string::npos;
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] != ':') continue;
      if (i + 1 < header.size() && header[i + 1] == ':') {
        ++i;
        continue;
      }
      if (i > 0 && header[i - 1] == ':') continue;
      colon = i;
      break;
    }
    bool hit = false;
    std::string hitName;
    if (colon != std::string::npos && header.find(';') == std::string::npos) {
      for (const std::string& ident : identifiersIn(header.substr(colon + 1))) {
        if (unorderedNames.count(ident) > 0) {
          hit = true;
          hitName = ident;
          break;
        }
      }
    } else {
      // Iterator-style loop: look for `<name>.begin()` / `<name>->begin()`.
      for (std::size_t b : findWord(header, "begin")) {
        std::size_t j = b;
        while (j > 0 && (header[j - 1] == '.' || header[j - 1] == '>' ||
                         header[j - 1] == '-')) {
          --j;
        }
        std::size_t nameEnd = j;
        while (j > 0 && isWordChar(header[j - 1])) --j;
        const std::string ident = header.substr(j, nameEnd - j);
        if (unorderedNames.count(ident) > 0) {
          hit = true;
          hitName = ident;
          break;
        }
      }
    }
    if (hit) {
      Finding f;
      f.file = info.path;
      f.line = lineOf(info, pos);
      f.hazard = "H1";
      f.message = "iteration over unordered container '" + hitName +
                  "' in an output-relevant file; hash order leaks into "
                  "serialized/reduced output (sort keys first or use "
                  "'// msd-lint: ordered-ok(reason)')";
      findings.push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------
// H2: banned nondeterminism sources.
// ---------------------------------------------------------------------------

/// `using X = std::chrono::...;` aliases so `X::now()` is caught too.
std::set<std::string> collectChronoAliases(const std::string& stripped) {
  std::set<std::string> aliases;
  for (std::size_t pos : findWord(stripped, "using")) {
    std::size_t cursor = skipSpaces(stripped, pos + 5);
    const std::size_t nameStart = cursor;
    while (cursor < stripped.size() && isWordChar(stripped[cursor])) ++cursor;
    if (cursor == nameStart) continue;
    const std::string name = stripped.substr(nameStart, cursor - nameStart);
    cursor = skipSpaces(stripped, cursor);
    if (cursor >= stripped.size() || stripped[cursor] != '=') continue;
    cursor = skipSpaces(stripped, cursor + 1);
    if (stripped.compare(cursor, 12, "std::chrono:") == 0 ||
        stripped.compare(cursor, 8, "chrono::") == 0) {
      aliases.insert(name);
    }
  }
  return aliases;
}

/// True when the word at `pos` is a bare call `word(` — not a member
/// access (`x.rand(`), qualified name (`Rng::rand(`), or declaration.
bool isBareCall(const std::string& text, std::size_t pos,
                std::size_t wordLen) {
  if (pos > 0) {
    const char prev = text[pos - 1];
    if (prev == '.' || prev == ':' || prev == '>') return false;
  }
  const std::size_t after = skipSpaces(text, pos + wordLen);
  return after < text.size() && text[after] == '(';
}

void scanH2(const FileInfo& info, std::vector<Finding>& findings) {
  // Timing and wall-clock randomness are the observability layer's job;
  // benchmarks legitimately measure wall time.
  if (isObs(info.path) || isBench(info.path)) return;
  const std::string& text = info.stripped;

  for (std::size_t pos : findWord(text, "rand")) {
    if (isBareCall(text, pos, 4)) {
      pushFinding(info, pos, "H2",
                  "rand() is a global-state RNG; use Rng::stream(seed, index)",
                  findings);
    }
  }
  for (std::size_t pos : findWord(text, "srand")) {
    if (isBareCall(text, pos, 5)) {
      pushFinding(info, pos, "H2",
                  "srand() seeds global state; use Rng::stream(seed, index)",
                  findings);
    }
  }
  for (std::size_t pos : findWord(text, "random_device")) {
    pushFinding(info, pos, "H2",
                "std::random_device is nondeterministic; derive streams from "
                "the run seed instead",
                findings);
  }
  for (std::size_t pos : findWord(text, "time")) {
    if (!isBareCall(text, pos, 4)) continue;
    const std::size_t open = text.find('(', pos);
    const std::size_t close = findMatching(text, open, '(', ')');
    if (close == std::string::npos) continue;
    const std::string arg = trim(text.substr(open + 1, close - open - 1));
    if (arg == "nullptr" || arg == "NULL" || arg == "0") {
      pushFinding(info, pos, "H2",
                  "time(" + arg + ") reads the wall clock; results must not "
                  "depend on run time",
                  findings);
    }
  }
  // obs::monotonicNanos() is the repo's one monotonic clock; reading it
  // directly in computation code is just as hazardous as a chrono now().
  // Stopwatch (src/util/stopwatch.h) is the sanctioned wrapper for
  // coarse progress reporting.
  if (!isStopwatch(info.path)) {
    for (std::size_t pos : findWord(text, "monotonicNanos")) {
      const std::size_t after = skipSpaces(text, pos + 14);
      if (after >= text.size() || text[after] != '(') continue;
      pushFinding(info, pos, "H2",
                  "monotonicNanos() reads the wall clock outside src/obs/ "
                  "and bench/; use Stopwatch for progress reporting or the "
                  "MSD_HISTOGRAM_*_NS macros for latency metrics",
                  findings);
    }
  }
  const std::set<std::string> aliases = collectChronoAliases(text);
  for (std::size_t pos : findWord(text, "now")) {
    const std::size_t after = skipSpaces(text, pos + 3);
    if (after >= text.size() || text[after] != '(') continue;
    if (pos < 2 || text[pos - 1] != ':' || text[pos - 2] != ':') continue;
    // Qualifier identifier before the '::'.
    std::size_t qEnd = pos - 2;
    std::size_t qStart = qEnd;
    while (qStart > 0 && isWordChar(text[qStart - 1])) --qStart;
    const std::string qualifier = text.substr(qStart, qEnd - qStart);
    const bool chronoQualified =
        (qStart >= 8 && text.compare(qStart - 8, 8, "chrono::") == 0);
    if (chronoQualified || aliases.count(qualifier) > 0 ||
        endsWith(qualifier, "_clock") || qualifier == "Clock") {
      pushFinding(info, pos, "H2",
                  "clock now() outside src/obs/ and bench/; timing belongs "
                  "to the observability layer",
                  findings);
    }
  }
}

// ---------------------------------------------------------------------------
// H3: by-reference FP accumulation inside parallelFor bodies.
// ---------------------------------------------------------------------------

std::map<std::string, std::vector<std::size_t>> collectFpNames(
    const std::string& stripped) {
  std::map<std::string, std::vector<std::size_t>> names;
  for (const char* type : {"double", "float"}) {
    for (std::size_t pos : findWord(stripped, type)) {
      std::size_t cursor =
          skipSpaces(stripped, pos + std::string(type).size());
      const std::size_t nameStart = cursor;
      while (cursor < stripped.size() && isWordChar(stripped[cursor])) {
        ++cursor;
      }
      if (cursor == nameStart) continue;
      names[stripped.substr(nameStart, cursor - nameStart)].push_back(pos);
    }
  }
  return names;
}

void scanH3(const FileInfo& info, std::vector<Finding>& findings) {
  if (isParallelUtil(info.path) || isObs(info.path)) return;
  const std::string& text = info.stripped;
  const auto fpNames = collectFpNames(text);
  if (fpNames.empty()) return;

  std::vector<std::size_t> calls = findWord(text, "parallelFor");
  for (std::size_t pos : findWord(text, "parallelForChunks")) {
    calls.push_back(pos);
  }
  std::sort(calls.begin(), calls.end());
  for (std::size_t pos : calls) {
    const std::size_t open = text.find('(', pos);
    if (open == std::string::npos) continue;
    const std::size_t close = findMatching(text, open, '(', ')');
    if (close == std::string::npos) continue;
    const std::string extent = text.substr(open, close - open + 1);

    // Lambda capture list: first '[' inside the call.
    const std::size_t capOpen = extent.find('[');
    if (capOpen == std::string::npos) continue;
    const std::size_t capClose = findMatching(extent, capOpen, '[', ']');
    if (capClose == std::string::npos) continue;
    const std::string captures =
        extent.substr(capOpen + 1, capClose - capOpen - 1);
    const std::string capTrim = trim(captures);
    // `[&]` or `[&, ...]` captures everything by reference; `[&name]`
    // captures name specifically.
    const bool captureDefaultByRef =
        capTrim == "&" || startsWith(capTrim, "&,") ||
        startsWith(capTrim, "& ,");
    std::set<std::string> refCaptures;
    std::size_t i = 0;
    while (i < captures.size()) {
      if (captures[i] == '&') {
        std::size_t j = i + 1;
        const std::size_t nameStart = j;
        while (j < captures.size() && isWordChar(captures[j])) ++j;
        if (j > nameStart) {
          refCaptures.insert(captures.substr(nameStart, j - nameStart));
        }
        i = j;
      } else {
        ++i;
      }
    }

    // Names declared inside the lambda are thread-private and fine.
    std::set<std::string> declaredInside;
    for (const auto& [name, decls] : fpNames) {
      for (std::size_t decl : decls) {
        if (decl > open && decl < close) declaredInside.insert(name);
      }
    }

    std::size_t cursor = capClose;
    while (true) {
      const std::size_t plusEq = extent.find("+=", cursor);
      if (plusEq == std::string::npos) break;
      cursor = plusEq + 2;
      std::size_t e = plusEq;
      while (e > 0 &&
             std::isspace(static_cast<unsigned char>(extent[e - 1])) != 0) {
        --e;
      }
      std::size_t s = e;
      while (s > 0 && isWordChar(extent[s - 1])) --s;
      if (s == e) continue;
      const std::string name = extent.substr(s, e - s);
      if (fpNames.count(name) == 0) continue;
      if (declaredInside.count(name) > 0) continue;
      const bool byRef =
          captureDefaultByRef || refCaptures.count(name) > 0;
      if (!byRef) continue;
      // Declared before the call → captured from the enclosing scope.
      bool declaredBefore = false;
      for (std::size_t decl : fpNames.at(name)) {
        if (decl < pos) declaredBefore = true;
      }
      if (!declaredBefore) continue;
      pushFinding(info, open + plusEq, "H3",
                  "floating-point '" + name +
                      " +=' on a by-reference capture inside a parallelFor "
                      "body; route cross-chunk accumulation through "
                      "parallelReduce",
                  findings);
    }
  }
}

// ---------------------------------------------------------------------------
// H4/H5: thread identity and raw thread construction.
// ---------------------------------------------------------------------------

void scanH4(const FileInfo& info, std::vector<Finding>& findings) {
  if (isParallelUtil(info.path) || isObs(info.path)) return;
  const std::string& text = info.stripped;
  for (std::size_t pos : findWord(text, "thread_local")) {
    pushFinding(info, pos, "H4",
                "thread_local state outside the pool; per-worker data makes "
                "results depend on scheduling",
                findings);
  }
  std::size_t pos = 0;
  while ((pos = text.find("this_thread", pos)) != std::string::npos) {
    const std::size_t getId = text.find("get_id", pos);
    if (getId != std::string::npos && getId - pos < 16) {
      pushFinding(info, pos, "H4",
                  "std::this_thread::get_id outside the pool; thread identity "
                  "must not reach results",
                  findings);
    }
    pos += 11;
  }
}

void scanH5(const FileInfo& info, std::vector<Finding>& findings) {
  if (isParallelUtil(info.path) || isObs(info.path)) return;
  const std::string& text = info.stripped;
  for (const char* token : {"thread", "jthread"}) {
    for (std::size_t pos : findWord(text, token)) {
      // Only `std::thread` / `std::jthread`, and not `std::thread::...`
      // statics like hardware_concurrency().
      if (pos < 5 || text.compare(pos - 5, 5, "std::") != 0) continue;
      const std::size_t after = skipSpaces(text, pos + std::string(token).size());
      if (after + 1 < text.size() && text[after] == ':' &&
          text[after + 1] == ':') {
        continue;
      }
      pushFinding(info, pos - 5, "H5",
                  std::string("raw std::") + token +
                      " outside src/util/parallel.*; all parallelism goes "
                      "through the shared pool",
                  findings);
    }
  }
  std::size_t pos = 0;
  while ((pos = text.find("pthread_", pos)) != std::string::npos) {
    if (pos == 0 || !isWordChar(text[pos - 1])) {
      pushFinding(info, pos, "H5",
                  "raw pthread usage outside src/util/parallel.*; all "
                  "parallelism goes through the shared pool",
                  findings);
    }
    pos += 8;
  }
}

// ---------------------------------------------------------------------------
// Suppression matching.
// ---------------------------------------------------------------------------

void applySuppressions(const std::vector<FileInfo>& files,
                       const std::vector<Suppression>& suppressions,
                       std::vector<Finding>& findings) {
  std::map<std::string, const FileInfo*> byPath;
  for (const FileInfo& info : files) byPath[info.path] = &info;
  for (Finding& f : findings) {
    const FileInfo* info = byPath.at(f.file);
    for (std::size_t line : {f.line, f.line > 1 ? f.line - 1 : f.line}) {
      const auto it = info->inlineAllows.find(line);
      if (it != info->inlineAllows.end() && it->second.first == f.hazard) {
        f.suppressed = true;
        f.suppressReason = it->second.second;
        break;
      }
    }
    if (f.suppressed) continue;
    for (const Suppression& s : suppressions) {
      if (s.hazard != f.hazard) continue;
      if (f.file == s.pathSuffix || endsWith(f.file, "/" + s.pathSuffix) ||
          endsWith(f.file, s.pathSuffix)) {
        f.suppressed = true;
        f.suppressReason = s.reason;
        break;
      }
    }
  }
}

}  // namespace

std::string stripCommentsAndStrings(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  State state = State::kCode;
  std::string rawDelim;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !isWordChar(text[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t p = i + 2;
          while (p < text.size() && text[p] != '(') ++p;
          rawDelim = ")" + text.substr(i + 2, p - i - 2) + "\"";
          state = State::kRaw;
          for (std::size_t k = i; k <= p && k < text.size(); ++k) {
            if (out[k] != '\n') out[k] = ' ';
          }
          i = p;
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          // A quote inside a numeric token (1'000'000, 0xFF'FF) is a
          // digit separator, not a character literal; treating it as one
          // would silently blank everything up to the next quote.
          std::size_t tok = i;
          while (tok > 0 &&
                 (isWordChar(text[tok - 1]) || text[tok - 1] == '\'')) {
            --tok;
          }
          const bool digitSeparator =
              tok < i &&
              std::isdigit(static_cast<unsigned char>(text[tok])) != 0;
          out[i] = ' ';
          if (!digitSeparator) state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRaw:
        if (text.compare(i, rawDelim.size(), rawDelim) == 0) {
          for (std::size_t k = i; k < i + rawDelim.size(); ++k) out[k] = ' ';
          i += rawDelim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Suppression> parseSuppressions(const std::string& text) {
  std::vector<Suppression> out;
  std::istringstream in(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::string t = internal::trim(line);
    if (t.empty() || t[0] == '#') continue;
    std::istringstream fields(t);
    Suppression s;
    fields >> s.hazard >> s.pathSuffix;
    std::getline(fields, s.reason);
    s.reason = internal::trim(s.reason);
    const bool hazardOk = s.hazard.size() == 2 && s.hazard[0] == 'H' &&
                          s.hazard[1] >= '1' && s.hazard[1] <= '9';
    if (!hazardOk || s.pathSuffix.empty() || s.reason.empty()) {
      throw std::runtime_error(
          "msd_lint: suppressions line " + std::to_string(lineNo) +
          ": expected 'H# path reason...', got: " + t);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Finding> scanFiles(const std::vector<SourceFile>& files,
                               const std::vector<Suppression>& suppressions) {
  std::vector<FileInfo> infos;
  infos.reserve(files.size());
  for (const SourceFile& file : files) {
    FileInfo info;
    info.path = normalizePath(file.path);
    info.original = file.text;
    info.stripped = stripCommentsAndStrings(file.text);
    computeLineStarts(info);
    parseDirectives(info);
    infos.push_back(std::move(info));
  }
  std::set<std::string> knownPaths;
  for (const FileInfo& info : infos) knownPaths.insert(info.path);
  for (FileInfo& info : infos) {
    info.resolvedIncludes = resolveIncludes(info, knownPaths);
  }
  computeOutputRelevance(infos);

  std::map<std::string, const FileInfo*> byPath;
  for (const FileInfo& info : infos) byPath[info.path] = &info;
  const std::set<std::string> errorBearers = collectErrorBearers(infos);

  std::vector<Finding> findings;
  for (const FileInfo& info : infos) {
    scanH1(info, findings);
    scanH2(info, findings);
    scanH3(info, findings);
    scanH4(info, findings);
    scanH5(info, findings);
    scanH6(info, findings);
    scanH7(info, byPath, findings);
    scanH8(info, errorBearers, findings);
    scanH9(info, findings);
  }
  applySuppressions(infos, suppressions, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.hazard < b.hazard;
            });
  return findings;
}

std::vector<Finding> scanTree(const std::string& root,
                              const std::vector<std::string>& subdirs,
                              const std::vector<Suppression>& suppressions) {
  const fs::path rootPath(root);
  if (!fs::is_directory(rootPath)) {
    throw std::runtime_error("msd_lint: not a directory: " + root);
  }
  std::vector<SourceFile> files;
  for (const std::string& subdir : subdirs) {
    const fs::path dir = rootPath / subdir;
    if (!fs::is_directory(dir)) {
      throw std::runtime_error("msd_lint: missing subdirectory: " +
                               dir.string());
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cpp" && ext != ".cc") {
        continue;
      }
      std::ifstream in(entry.path(), std::ios::binary);
      if (!in.good()) {
        throw std::runtime_error("msd_lint: cannot open " +
                                 entry.path().string());
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      SourceFile file;
      file.path = normalizePath(
          fs::relative(entry.path(), rootPath).generic_string());
      file.text = buffer.str();
      files.push_back(std::move(file));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return scanFiles(files, suppressions);
}

bool hasActiveFindings(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    if (!f.suppressed) return true;
  }
  return false;
}

std::string formatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.hazard + "] " + finding.message;
}

}  // namespace msd::lint
