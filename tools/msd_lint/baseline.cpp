#include "msd_lint/baseline.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>

#include "msd_lint/sarif.h"  // jsonEscape

namespace msd::lint {

namespace {

constexpr const char* kSchema = "msd-lint-baseline-v1";

/// Minimal recursive-descent reader for exactly the baseline document
/// shape — not a general JSON parser. Throws on anything unexpected so a
/// hand-edited baseline fails loudly instead of silently ratcheting.
class Reader {
 public:
  explicit Reader(const std::string& text) : text_(text) {}

  void expect(char c) {
    skipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: fail("unsupported escape");
        }
      }
      out += c;
    }
    expect('"');
    return out;
  }

  std::size_t number() {
    skipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a non-negative integer");
    return static_cast<std::size_t>(
        std::stoull(text_.substr(start, pos_ - start)));
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool atEnd() {
    skipWs();
    return pos_ >= text_.size();
  }

  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("msd_lint: malformed baseline at offset " +
                             std::to_string(pos_) + ": " + what);
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

std::map<std::pair<std::string, std::string>, std::size_t> bucketize(
    const std::vector<Finding>& findings) {
  std::map<std::pair<std::string, std::string>, std::size_t> buckets;
  for (const Finding& f : findings) {
    if (f.suppressed) continue;
    ++buckets[{f.file, f.hazard}];
  }
  return buckets;
}

}  // namespace

std::string writeBaseline(const std::vector<Finding>& findings) {
  const auto buckets = bucketize(findings);
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"" << kSchema << "\",\n";
  out << "  \"findings\": [";
  bool first = true;
  for (const auto& [key, count] : buckets) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"file\": \"" << jsonEscape(key.first)
        << "\", \"hazard\": \"" << jsonEscape(key.second)
        << "\", \"count\": " << count << "}";
  }
  out << (first ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

std::vector<BaselineEntry> parseBaseline(const std::string& text) {
  Reader reader(text);
  reader.expect('{');
  bool sawSchema = false;
  std::vector<BaselineEntry> entries;
  bool firstKey = true;
  while (true) {
    if (reader.consume('}')) break;
    if (!firstKey) reader.expect(',');
    firstKey = false;
    const std::string key = reader.string();
    reader.expect(':');
    if (key == "schema") {
      const std::string schema = reader.string();
      if (schema != kSchema) {
        throw std::runtime_error(
            "msd_lint: baseline schema mismatch: expected '" +
            std::string(kSchema) + "', got '" + schema + "'");
      }
      sawSchema = true;
    } else if (key == "findings") {
      reader.expect('[');
      bool firstEntry = true;
      while (true) {
        if (reader.consume(']')) break;
        if (!firstEntry) {
          reader.expect(',');
          // Allow a trailing comma-free list only; `],` handled above.
        }
        firstEntry = false;
        reader.expect('{');
        BaselineEntry entry;
        bool sawFile = false;
        bool sawHazard = false;
        bool sawCount = false;
        bool firstField = true;
        while (true) {
          if (reader.consume('}')) break;
          if (!firstField) reader.expect(',');
          firstField = false;
          const std::string field = reader.string();
          reader.expect(':');
          if (field == "file") {
            entry.file = reader.string();
            sawFile = true;
          } else if (field == "hazard") {
            entry.hazard = reader.string();
            sawHazard = true;
          } else if (field == "count") {
            entry.count = reader.number();
            sawCount = true;
          } else {
            reader.fail("unknown entry field '" + field + "'");
          }
        }
        if (!sawFile || !sawHazard || !sawCount) {
          reader.fail("entry needs file, hazard, and count");
        }
        const bool hazardOk = entry.hazard.size() == 2 &&
                              entry.hazard[0] == 'H' &&
                              entry.hazard[1] >= '1' && entry.hazard[1] <= '9';
        if (!hazardOk || entry.file.empty() || entry.count == 0) {
          reader.fail("invalid entry (hazard H1-H9, non-empty file, "
                      "count >= 1 required)");
        }
        entries.push_back(std::move(entry));
      }
    } else {
      reader.fail("unknown key '" + key + "'");
    }
  }
  if (!reader.atEnd()) reader.fail("trailing content");
  if (!sawSchema) {
    throw std::runtime_error("msd_lint: baseline is missing the schema tag");
  }
  return entries;
}

BaselineDiff diffBaseline(const std::vector<Finding>& findings,
                          const std::vector<BaselineEntry>& baseline) {
  const auto scanned = bucketize(findings);
  std::map<std::pair<std::string, std::string>, std::size_t> accepted;
  for (const BaselineEntry& entry : baseline) {
    accepted[{entry.file, entry.hazard}] += entry.count;
  }

  BaselineDiff diff;
  for (const auto& [key, count] : scanned) {
    const auto it = accepted.find(key);
    const std::size_t base = it == accepted.end() ? 0 : it->second;
    if (count > base) {
      diff.newFindings.push_back(
          key.first + ": [" + key.second + "] " + std::to_string(count) +
          " finding(s), baseline accepts " + std::to_string(base));
    }
  }
  for (const auto& [key, base] : accepted) {
    const auto it = scanned.find(key);
    const std::size_t count = it == scanned.end() ? 0 : it->second;
    if (count < base) {
      diff.staleEntries.push_back(
          key.first + ": [" + key.second + "] baseline accepts " +
          std::to_string(base) + " but the scan found " +
          std::to_string(count) + " — delete the fixed entry");
    }
  }
  return diff;
}

}  // namespace msd::lint
