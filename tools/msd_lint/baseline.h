#pragma once

// Findings baseline with ratchet semantics. The committed baseline
// (tools/msd_lint_baseline.json) records the accepted per-(file, hazard)
// finding counts — at zero for a clean tree. `--diff-baseline` fails in
// BOTH directions: a count above the baseline is a new hazard, a count
// below it (or a vanished file) is a stale entry that must be deleted so
// the ratchet can only ever tighten.

#include <cstddef>
#include <string>
#include <vector>

#include "msd_lint/lint.h"

namespace msd::lint {

/// One accepted (file, hazard) bucket.
struct BaselineEntry {
  std::string file;
  std::string hazard;
  std::size_t count = 0;
};

/// Serializes the unsuppressed findings as a baseline document
/// (schema "msd-lint-baseline-v1", entries sorted by file then hazard).
std::string writeBaseline(const std::vector<Finding>& findings);

/// Parses a baseline document. Throws std::runtime_error on a missing or
/// mismatched schema tag, malformed JSON, or invalid entries.
std::vector<BaselineEntry> parseBaseline(const std::string& text);

/// Outcome of comparing a scan against a baseline.
struct BaselineDiff {
  /// Buckets whose scan count exceeds the baseline (new hazards).
  std::vector<std::string> newFindings;
  /// Baseline buckets whose scan count dropped below the recorded count
  /// (fixed findings whose entries must be removed from the baseline).
  std::vector<std::string> staleEntries;

  bool clean() const { return newFindings.empty() && staleEntries.empty(); }
};

/// Compares unsuppressed findings against the baseline, bucketed by
/// (file, hazard). Suppressed findings never count: inline waivers are
/// the mechanism for accepted sites, the baseline is the mechanism for
/// *transitionally* accepted ones.
BaselineDiff diffBaseline(const std::vector<Finding>& findings,
                          const std::vector<BaselineEntry>& baseline);

}  // namespace msd::lint
