// H6-H9: the flow-aware hazard passes. These lean on the flow layer
// (lambda captures, function regions, declared names) to reason across
// statements — which shared names a pool lambda can race on, whether a
// raw byte access is dominated by a bounds check, whether an
// error-bearing result is consumed, and whether unordered/pointer
// ordering can reach output. Every rule here is tuned for zero false
// positives on the shipped tree; the fixture tests pin both directions.

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "msd_lint/flow.h"
#include "msd_lint/internal.h"

namespace msd::lint::internal {

namespace {

std::size_t prevNonSpaceIdx(const std::string& text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(text[pos])) == 0) return pos;
  }
  return std::string::npos;
}

/// First identifier in `s`, or empty.
std::string firstIdentifier(const std::string& s) {
  std::size_t i = 0;
  while (i < s.size() && !isWordChar(s[i])) ++i;
  const std::size_t start = i;
  while (i < s.size() && isWordChar(s[i])) ++i;
  return s.substr(start, i - start);
}

/// Splits on commas at bracket depth zero.
std::vector<std::string> splitArgs(const std::string& text, std::size_t begin,
                                   std::size_t end) {
  std::vector<std::string> parts;
  int depth = 0;
  std::size_t start = begin;
  for (std::size_t i = begin; i < end && i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
    } else if (c == ',' && depth == 0) {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (end > start) parts.push_back(text.substr(start, end - start));
  return parts;
}

/// Name of the function whose argument list contains `offset`, or empty
/// when `offset` is not inside a call (statement scope reached first).
std::string calleeOf(const std::string& text, std::size_t offset) {
  int depth = 0;
  std::size_t j = offset;
  while (j > 0) {
    --j;
    const char c = text[j];
    if (c == ')' || c == ']') {
      ++depth;
    } else if (c == '(' || c == '[') {
      if (depth == 0) {
        return c == '(' ? prevWord(text, j) : std::string();
      }
      --depth;
    } else if (depth == 0 && (c == ';' || c == '{' || c == '}')) {
      return std::string();
    }
  }
  return std::string();
}

// ---------------------------------------------------------------------------
// H6: shared-state writes inside pool lambdas.
// ---------------------------------------------------------------------------

/// Names declared with std::atomic<...> anywhere in the file.
std::set<std::string> collectAtomicNames(const std::string& text) {
  std::set<std::string> names;
  for (std::size_t pos : findWord(text, "atomic")) {
    std::size_t cursor = skipSpaces(text, pos + 6);
    if (cursor >= text.size() || text[cursor] != '<') continue;
    const std::size_t close = findMatching(text, cursor, '<', '>');
    if (close == std::string::npos) continue;
    cursor = skipSpaces(text, close + 1);
    while (cursor < text.size() &&
           (text[cursor] == '&' || text[cursor] == '*')) {
      cursor = skipSpaces(text, cursor + 1);
    }
    const std::size_t nameStart = cursor;
    while (cursor < text.size() && isWordChar(text[cursor])) ++cursor;
    if (cursor > nameStart) {
      names.insert(text.substr(nameStart, cursor - nameStart));
    }
  }
  return names;
}

bool isAtomicMethod(const std::string& name) {
  static const std::set<std::string> kMethods = {
      "store",       "load",          "exchange",
      "fetch_add",   "fetch_sub",     "fetch_and",
      "fetch_or",    "fetch_xor",     "compare_exchange_weak",
      "compare_exchange_strong"};
  return kMethods.count(name) > 0;
}

bool isMutatingMethod(const std::string& name) {
  static const std::set<std::string> kMethods = {
      "push_back", "emplace_back", "emplace",  "insert", "erase",
      "clear",     "resize",       "assign",   "pop_back", "push",
      "pop",       "append",       "reserve",  "reset",  "swap",
      "fill",      "shrink_to_fit"};
  return kMethods.count(name) > 0;
}

/// Ranges of the lambda body whose execution is partitioned by an
/// induction parameter: `switch (param...)` bodies and
/// `if (param == ...)` statements. Writes inside them hit disjoint
/// branches per index (the parallel-sections idiom).
std::vector<std::pair<std::size_t, std::size_t>> partitionRanges(
    const std::string& text, const flow::Lambda& lambda,
    const std::set<std::string>& params) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  const std::string body = text.substr(
      lambda.bodyOpen, lambda.bodyClose - lambda.bodyOpen + 1);
  for (const char* keyword : {"switch", "if"}) {
    for (std::size_t rel : findWord(body, keyword)) {
      const std::size_t pos = lambda.bodyOpen + rel;
      const std::size_t open =
          skipSpaces(text, pos + std::string(keyword).size());
      if (open >= text.size() || text[open] != '(') continue;
      const std::size_t close = findMatching(text, open, '(', ')');
      if (close == std::string::npos || close >= lambda.bodyClose) continue;
      const std::string cond = text.substr(open + 1, close - open - 1);
      if (!flow::mentionsAny(cond, params)) continue;
      if (std::string(keyword) == "if" &&
          cond.find("==") == std::string::npos) {
        continue;
      }
      std::size_t stmt = skipSpaces(text, close + 1);
      if (stmt < text.size() && text[stmt] == '{') {
        const std::size_t end = findMatching(text, stmt, '{', '}');
        if (end != std::string::npos) ranges.emplace_back(stmt, end);
      } else {
        const std::size_t semi = text.find(';', stmt);
        if (semi != std::string::npos) ranges.emplace_back(stmt, semi);
      }
    }
  }
  return ranges;
}

struct WriteHit {
  bool isWrite = false;
  std::string what;  ///< how the write happens, for the message
};

/// Follows the access path after the identifier ending at `end`
/// (member/subscript chain) and classifies whether it mutates, and
/// whether a subscript indexed by a chunk-private name makes the target
/// element disjoint per chunk.
WriteHit classifyAccess(const std::string& text, std::size_t end,
                        std::size_t limit,
                        const std::set<std::string>& safeIndexNames) {
  WriteHit hit;
  bool indexSafe = false;
  std::size_t cur = skipSpaces(text, end);
  while (cur < limit) {
    const char c = text[cur];
    const char next = cur + 1 < text.size() ? text[cur + 1] : '\0';
    if (c == '[') {
      const std::size_t close = findMatching(text, cur, '[', ']');
      if (close == std::string::npos || close > limit) return hit;
      if (flow::mentionsAny(text.substr(cur + 1, close - cur - 1),
                            safeIndexNames)) {
        indexSafe = true;
      }
      cur = skipSpaces(text, close + 1);
      continue;
    }
    if (c == '.' || (c == '-' && next == '>')) {
      std::size_t m = skipSpaces(text, cur + (c == '.' ? 1 : 2));
      const std::size_t mStart = m;
      while (m < text.size() && isWordChar(text[m])) ++m;
      if (m == mStart) return hit;
      const std::string member = text.substr(mStart, m - mStart);
      const std::size_t after = skipSpaces(text, m);
      if (after < text.size() && text[after] == '(') {
        if (isAtomicMethod(member)) return hit;  // atomic idiom: safe
        if (member == "at") {
          const std::size_t close = findMatching(text, after, '(', ')');
          if (close == std::string::npos || close > limit) return hit;
          if (flow::mentionsAny(text.substr(after + 1, close - after - 1),
                                safeIndexNames)) {
            indexSafe = true;
          }
          cur = skipSpaces(text, close + 1);
          continue;
        }
        if (isMutatingMethod(member)) {
          if (!indexSafe) {
            hit.isWrite = true;
            hit.what = "." + member + "()";
          }
          return hit;
        }
        return hit;  // unknown method: stop, assume read
      }
      cur = after;
      continue;
    }
    if (c == '=' && next != '=') {
      if (!indexSafe) {
        hit.isWrite = true;
        hit.what = "assignment";
      }
      return hit;
    }
    if ((c == '+' || c == '-' || c == '*' || c == '/' || c == '%' ||
         c == '&' || c == '|' || c == '^')) {
      if (next == '=') {
        if (!indexSafe) {
          hit.isWrite = true;
          hit.what = std::string(1, c) + "=";
        }
        return hit;
      }
      if ((c == '+' && next == '+') || (c == '-' && next == '-')) {
        if (!indexSafe) {
          hit.isWrite = true;
          hit.what = std::string(1, c) + std::string(1, c);
        }
        return hit;
      }
      return hit;
    }
    if (c == '<' && next == '<' && cur + 2 < text.size() &&
        text[cur + 2] == '=') {
      if (!indexSafe) {
        hit.isWrite = true;
        hit.what = "<<=";
      }
      return hit;
    }
    return hit;
  }
  return hit;
}

void analyzePoolLambda(const FileInfo& info, const std::string& text,
                       const flow::Lambda& lambda,
                       const std::vector<flow::Lambda>& allLambdas,
                       const std::set<std::string>& atomicNames,
                       const std::set<std::size_t>& h3Lines,
                       std::set<std::pair<std::size_t, std::string>>& seen,
                       std::vector<Finding>& findings) {
  const std::set<std::string> params(lambda.params.begin(),
                                     lambda.params.end());
  const std::set<std::string> insideDecl =
      flow::declaredNames(text, lambda.bodyOpen + 1, lambda.bodyClose);
  std::vector<const flow::Lambda*> nested;
  std::set<std::string> safeIndexNames = params;
  safeIndexNames.insert(insideDecl.begin(), insideDecl.end());
  for (const flow::Lambda& other : allLambdas) {
    if (other.bodyOpen > lambda.bodyOpen &&
        other.bodyClose < lambda.bodyClose) {
      nested.push_back(&other);
      for (const std::string& p : other.params) safeIndexNames.insert(p);
    }
  }
  const auto partitions = partitionRanges(text, lambda, params);

  std::size_t i = lambda.bodyOpen + 1;
  while (i < lambda.bodyClose) {
    if (!isWordChar(text[i]) ||
        std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    while (i < lambda.bodyClose && isWordChar(text[i])) ++i;
    const std::string name = text.substr(start, i - start);
    const char prevCh = prevNonSpace(text, start);
    if (prevCh == '.' || prevCh == ':' ||
        (prevCh == '>' && start >= 2 && text[start - 2] == '-')) {
      continue;  // member/qualified component — receiver was checked
    }

    // Deref through a captured pointer writes shared state even when the
    // pointer itself is captured by value.
    const std::size_t prevIdx = prevNonSpaceIdx(text, start);
    const bool isDeref =
        prevIdx != std::string::npos && text[prevIdx] == '*' &&
        (prevIdx == 0 ||
         (!isWordChar(text[prevIdx - 1]) && text[prevIdx - 1] != ')' &&
          text[prevIdx - 1] != ']'));

    // Chunk-private names never race.
    if (params.count(name) > 0 || insideDecl.count(name) > 0) continue;
    // Value-captured by the innermost nested lambda: the write hits a
    // copy (except through a deref, where the pointee is still shared).
    bool shadowedByValue = false;
    for (const flow::Lambda* m : nested) {
      if (start <= m->bodyOpen || start >= m->bodyClose) continue;
      if (std::count(m->params.begin(), m->params.end(), name) > 0) {
        shadowedByValue = true;
        break;
      }
      if (!isDeref && (m->valueCaptures.count(name) > 0 ||
                       (m->defaultByValue &&
                        m->refCaptures.count(name) == 0))) {
        shadowedByValue = true;
        break;
      }
    }
    if (shadowedByValue) continue;

    bool shared = lambda.defaultByRef || lambda.refCaptures.count(name) > 0;
    if (!shared && lambda.capturesThis &&
        lambda.valueCaptures.count(name) == 0) {
      shared = true;  // bare name under [this]: a member or global
    }
    if (!shared && isDeref &&
        (lambda.valueCaptures.count(name) > 0 || lambda.defaultByValue)) {
      shared = true;  // pointer copied by value, pointee still shared
    }
    if (!shared) continue;
    if (atomicNames.count(name) > 0) continue;

    // Prefix ++/--.
    WriteHit hit;
    if (prevIdx != std::string::npos && prevIdx >= 1 &&
        ((text[prevIdx] == '+' && text[prevIdx - 1] == '+') ||
         (text[prevIdx] == '-' && text[prevIdx - 1] == '-'))) {
      hit.isWrite = true;
      hit.what = std::string(2, text[prevIdx]);
    } else {
      hit = classifyAccess(text, i, lambda.bodyClose, safeIndexNames);
    }
    if (!hit.isWrite) continue;

    bool partitioned = false;
    for (const auto& [from, to] : partitions) {
      if (start > from && start < to) {
        partitioned = true;
        break;
      }
    }
    if (partitioned) continue;

    const std::size_t line = lineOf(info, start);
    if (h3Lines.count(line) > 0) continue;  // already reported as H3
    if (!seen.insert({line, name}).second) continue;
    pushFinding(info, start, "H6",
                "write (" + hit.what + ") to captured '" + name +
                    "' shared across pool workers; give each chunk a "
                    "disjoint slot (index by the induction variable, "
                    "WorkerScratch, or a per-chunk partial buffer), use an "
                    "atomic, or reduce via parallelReduce",
                findings);
  }
}

}  // namespace

void scanH6(const FileInfo& info, std::vector<Finding>& findings) {
  if (isParallelUtil(info.path) || isObs(info.path)) return;
  const std::string& text = info.stripped;

  std::vector<std::size_t> calls = findWord(text, "parallelFor");
  for (std::size_t pos : findWord(text, "parallelForChunks")) {
    calls.push_back(pos);
  }
  for (std::size_t pos : findWord(text, "run")) {
    if (pos > 0 && text[pos - 1] == '.') calls.push_back(pos);
  }
  if (calls.empty()) return;
  std::sort(calls.begin(), calls.end());

  std::set<std::size_t> h3Lines;
  for (const Finding& f : findings) {
    if (f.file == info.path && f.hazard == "H3") h3Lines.insert(f.line);
  }
  const std::set<std::string> atomicNames = collectAtomicNames(text);
  std::set<std::pair<std::size_t, std::string>> seen;

  for (std::size_t pos : calls) {
    const std::size_t open = text.find('(', pos);
    if (open == std::string::npos) continue;
    const std::size_t close = findMatching(text, open, '(', ')');
    if (close == std::string::npos) continue;
    const std::vector<flow::Lambda> lambdas =
        flow::lambdasIn(text, open + 1, close);
    for (const flow::Lambda& lambda : lambdas) {
      // Only top-level lambdas: nested ones are analyzed as part of
      // their enclosing lambda's body.
      bool isNested = false;
      for (const flow::Lambda& other : lambdas) {
        if (&other != &lambda && lambda.captureOpen > other.bodyOpen &&
            lambda.bodyClose < other.bodyClose) {
          isNested = true;
          break;
        }
      }
      if (isNested) continue;
      analyzePoolLambda(info, text, lambda, lambdas, atomicNames, h3Lines,
                        seen, findings);
    }
  }
}

// ---------------------------------------------------------------------------
// H7: unchecked raw byte access in the wire-parse layer.
// ---------------------------------------------------------------------------

namespace {

/// Declarations of `const std::uint8_t*` names (the read side of the
/// wire layer; writer-side buffers are non-const and exempt), keyed by
/// name with the offset of each declaration. The offsets let the caller
/// scope a local's accesses to its own function — a writer-side array
/// that happens to share a name with a reader-side pointer elsewhere in
/// the file must not inherit its byte-pointer status.
std::map<std::string, std::vector<std::size_t>> collectBytePtrDecls(
    const std::string& text) {
  std::map<std::string, std::vector<std::size_t>> decls;
  for (std::size_t pos : findWord(text, "uint8_t")) {
    // Require a `const` qualifier introducing the declaration.
    std::size_t q = pos;
    if (q >= 2 && text[q - 1] == ':' && text[q - 2] == ':') {
      q -= 2;
      while (q > 0 && isWordChar(text[q - 1])) --q;  // skip `std`
    }
    if (prevWord(text, q) != "const") continue;
    std::size_t cursor = skipSpaces(text, pos + 7);
    if (cursor >= text.size() || text[cursor] != '*') continue;
    cursor = skipSpaces(text, cursor + 1);
    // `* const` members.
    if (text.compare(cursor, 5, "const") == 0 &&
        (cursor + 5 >= text.size() || !isWordChar(text[cursor + 5]))) {
      cursor = skipSpaces(text, cursor + 5);
    }
    const std::size_t nameStart = cursor;
    while (cursor < text.size() && isWordChar(text[cursor])) ++cursor;
    if (cursor > nameStart) {
      decls[text.substr(nameStart, cursor - nameStart)].push_back(nameStart);
    }
  }
  return decls;
}

bool isSizeishWord(const std::string& word) {
  if (word == "sizeof") return true;
  std::string lower;
  lower.reserve(word.size());
  for (char c : word) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  for (const char* stem :
       {"size", "bytes", "len", "remaining", "count", "capacity", "end"}) {
    if (lower.find(stem) != std::string::npos) return true;
  }
  return false;
}

/// Offsets of lines that perform a length/remaining comparison: the line
/// contains a relational operator and a size-ish identifier. Lines like
/// `if (size_ - cursor_ < kBlockHeaderBytes) return ...;` dominate the
/// raw accesses that follow them in the same function.
std::vector<std::size_t> collectGuardOffsets(const std::string& text) {
  std::vector<std::size_t> guards;
  std::size_t lineStart = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i != text.size() && text[i] != '\n') continue;
    const std::string line = text.substr(lineStart, i - lineStart);
    bool relational = false;
    for (std::size_t j = 0; j + 1 < line.size() && !relational; ++j) {
      const char c = line[j];
      if (c != '<' && c != '>') continue;
      const char prev = j > 0 ? line[j - 1] : '\0';
      const char next = line[j + 1];
      if (next == c || prev == c) continue;    // shift
      if (c == '>' && prev == '-') continue;   // arrow
      if (next == '<' || next == '>') continue;
      // Template argument lists: `<` directly between word chars with a
      // matching `>` would still count; accept the over-approximation —
      // a template mention on a line with a size-ish word is rare and
      // only ever silences, never creates, a finding.
      relational = true;
    }
    if (relational) {
      for (const std::string& ident : identifiersIn(line)) {
        if (isSizeishWord(ident)) {
          guards.push_back(lineStart);
          break;
        }
      }
    }
    lineStart = i + 1;
  }
  return guards;
}

}  // namespace

void scanH7(const FileInfo& info,
            const std::map<std::string, const FileInfo*>& byPath,
            std::vector<Finding>& findings) {
  if (!isIoLayer(info.path) || isWireLayer(info.path)) return;
  const std::string& text = info.stripped;

  const std::map<std::string, std::vector<std::size_t>> decls =
      collectBytePtrDecls(text);
  const std::vector<flow::Region> regions = flow::functionRegions(text);

  // Names valid everywhere in the file: companion-header members and
  // file-scope declarations (including function parameters, which sit
  // just outside their body's region).
  std::set<std::string> globalNames;
  if (endsWith(info.path, ".cpp")) {
    const std::string companion =
        info.path.substr(0, info.path.size() - 4) + ".h";
    const auto it = byPath.find(companion);
    if (it != byPath.end()) {
      for (const auto& [name, offsets] :
           collectBytePtrDecls(it->second->stripped)) {
        globalNames.insert(name);
      }
    }
  }
  std::set<std::string> names = globalNames;
  for (const auto& [name, offsets] : decls) {
    names.insert(name);
    for (std::size_t d : offsets) {
      if (!flow::enclosingRegion(regions, d).has_value()) {
        globalNames.insert(name);
        break;
      }
    }
  }
  if (names.empty()) return;

  // An occurrence only counts as a byte-pointer access if a declaration
  // of that name is in scope there: globally valid, or declared in the
  // same function region.
  const auto validAt = [&](const std::string& name, std::size_t occ) {
    if (globalNames.count(name) > 0) return true;
    const auto occRegion = flow::enclosingRegion(regions, occ);
    if (!occRegion.has_value()) return false;
    const auto it = decls.find(name);
    if (it == decls.end()) return false;
    for (std::size_t d : it->second) {
      const auto declRegion = flow::enclosingRegion(regions, d);
      if (declRegion.has_value() &&
          declRegion->bodyOpen == occRegion->bodyOpen) {
        return true;
      }
    }
    return false;
  };

  const std::vector<std::size_t> guards = collectGuardOffsets(text);

  struct Access {
    std::size_t offset;
    std::string name;
    std::string kind;
  };
  std::vector<Access> accesses;

  for (const std::string& name : names) {
    for (std::size_t occ : findWord(text, name)) {
      if (!validAt(name, occ)) continue;
      const std::size_t after = skipSpaces(text, occ + name.size());
      const char ac = after < text.size() ? text[after] : '\0';
      const char an = after + 1 < text.size() ? text[after + 1] : '\0';
      if (ac == '[') {
        accesses.push_back({occ, name, "indexes"});
        continue;
      }
      if ((ac == '+' || ac == '-') && an != ac && an != '=') {
        // Pointer arithmetic forms an offset pointer — unless it feeds
        // the checked varint reader, which takes (ptr, remaining).
        if (calleeOf(text, occ) != "decodeVarint") {
          accesses.push_back({occ, name, "offsets"});
        }
        continue;
      }
      if (ac == ',' || ac == ')') {
        // A bare byte pointer handed to the raw copy/compare routines.
        const std::string callee = calleeOf(text, occ);
        if (callee == "memcpy" || callee == "memcmp" ||
            callee == "memmove") {
          accesses.push_back({occ, name, "feeds " + callee + " with"});
        }
        continue;
      }
      const std::size_t prevIdx = prevNonSpaceIdx(text, occ);
      if (prevIdx != std::string::npos && text[prevIdx] == '*' &&
          (prevIdx == 0 ||
           (!isWordChar(text[prevIdx - 1]) && text[prevIdx - 1] != ')' &&
            text[prevIdx - 1] != ']'))) {
        accesses.push_back({occ, name, "dereferences"});
      }
    }
  }

  std::set<std::size_t> seenLines;
  std::sort(accesses.begin(), accesses.end(),
            [](const Access& a, const Access& b) {
              return a.offset < b.offset;
            });
  for (const Access& access : accesses) {
    const auto region = flow::enclosingRegion(regions, access.offset);
    const std::size_t begin = region.has_value() ? region->bodyOpen : 0;
    bool guarded = false;
    for (std::size_t g : guards) {
      if (g > begin && g < access.offset) {
        guarded = true;
        break;
      }
    }
    if (guarded) continue;
    const std::size_t line = lineOf(info, access.offset);
    if (!seenLines.insert(line).second) continue;
    pushFinding(info, access.offset, "H7",
                "'" + access.name + "' " + access.kind +
                    " mapped bytes with no preceding length/remaining "
                    "check in this function; bounds-check against the "
                    "mapped size or route through the checked wire.h "
                    "readers",
                findings);
  }
}

// ---------------------------------------------------------------------------
// H8: discarded error-bearing results.
// ---------------------------------------------------------------------------

namespace {

bool hasErrorBearerName(const std::string& name) {
  for (const char* prefix : {"parse", "read", "open", "write", "load",
                             "save", "decode", "try", "flush"}) {
    if (startsWith(name, prefix)) return true;
  }
  return false;
}

bool isDeclSpecifier(const std::string& word) {
  static const std::set<std::string> kSpecifiers = {
      "inline", "static", "virtual", "constexpr", "extern", "friend",
      "explicit"};
  return kSpecifiers.count(word) > 0;
}

}  // namespace

std::set<std::string> collectErrorBearers(const std::vector<FileInfo>& files) {
  std::set<std::string> out;
  for (const FileInfo& info : files) {
    const std::string& text = info.stripped;
    for (std::size_t pos : findWord(text, "bool")) {
      const char prev = prevNonSpace(text, pos);
      const bool positionOk =
          prev == '\0' || prev == ';' || prev == '}' || prev == '{' ||
          prev == ']' || prev == ':';
      if (!positionOk && !isDeclSpecifier(prevWord(text, pos))) continue;
      std::size_t cursor = skipSpaces(text, pos + 4);
      const std::size_t nameStart = cursor;
      while (cursor < text.size() && isWordChar(text[cursor])) ++cursor;
      if (cursor == nameStart) continue;
      const std::string name = text.substr(nameStart, cursor - nameStart);
      if (!hasErrorBearerName(name)) continue;
      cursor = skipSpaces(text, cursor);
      if (cursor < text.size() && text[cursor] == '(') out.insert(name);
    }
    // Every function returning Expected<...> is error-bearing by
    // construction, whatever its name.
    for (std::size_t pos : findWord(text, "Expected")) {
      std::size_t cursor = skipSpaces(text, pos + 8);
      if (cursor >= text.size() || text[cursor] != '<') continue;
      const std::size_t close = findMatching(text, cursor, '<', '>');
      if (close == std::string::npos) continue;
      cursor = skipSpaces(text, close + 1);
      const std::size_t nameStart = cursor;
      while (cursor < text.size() && isWordChar(text[cursor])) ++cursor;
      if (cursor == nameStart) continue;
      const std::string name = text.substr(nameStart, cursor - nameStart);
      cursor = skipSpaces(text, cursor);
      if (cursor < text.size() && text[cursor] == '(') out.insert(name);
    }
  }
  return out;
}

void scanH8(const FileInfo& info, const std::set<std::string>& errorBearers,
            std::vector<Finding>& findings) {
  const std::string& text = info.stripped;

  // (a) Statement-position calls whose result is dropped on the floor.
  for (const std::string& name : errorBearers) {
    for (std::size_t occ : findWord(text, name)) {
      const std::size_t open = skipSpaces(text, occ + name.size());
      if (open >= text.size() || text[open] != '(') continue;
      const std::size_t close = findMatching(text, open, '(', ')');
      if (close == std::string::npos) continue;
      const std::size_t post = skipSpaces(text, close + 1);
      if (post >= text.size() || text[post] != ';') continue;

      std::size_t prevIdx = prevNonSpaceIdx(text, occ);
      // Member call: hop over `receiver.` / `receiver->` to the
      // statement position.
      if (prevIdx != std::string::npos &&
          (text[prevIdx] == '.' ||
           (text[prevIdx] == '>' && prevIdx >= 1 &&
            text[prevIdx - 1] == '-'))) {
        std::size_t r = text[prevIdx] == '.' ? prevIdx : prevIdx - 1;
        r = prevNonSpaceIdx(text, r);
        if (r == std::string::npos || !isWordChar(text[r])) continue;
        while (r > 0 && isWordChar(text[r - 1])) --r;
        prevIdx = prevNonSpaceIdx(text, r);
      }
      const char prev =
          prevIdx == std::string::npos ? '\0' : text[prevIdx];
      bool discarded = false;
      if (prev == '\0' || prev == ';' || prev == '{' || prev == '}' ||
          prev == ':') {
        discarded = true;
      } else if (prev == ')') {
        // `(void)call();` is an explicit waiver; `if (...) call();`
        // still discards the result.
        int depth = 0;
        std::size_t j = prevIdx + 1;
        std::size_t openParen = std::string::npos;
        while (j > 0) {
          --j;
          if (text[j] == ')') {
            ++depth;
          } else if (text[j] == '(') {
            --depth;
            if (depth == 0) {
              openParen = j;
              break;
            }
          }
        }
        if (openParen != std::string::npos) {
          const std::string inner =
              trim(text.substr(openParen + 1, prevIdx - openParen - 1));
          const std::string introducer = prevWord(text, openParen);
          if (inner == "void") {
            discarded = false;
          } else if (introducer == "if" || introducer == "while" ||
                     introducer == "for") {
            discarded = true;
          }
        }
      }
      if (!discarded) continue;
      pushFinding(info, occ, "H8",
                  "result of '" + name +
                      "' carries success/failure and is discarded; branch "
                      "on it, propagate it, or cast to (void) with a "
                      "justification",
                  findings);
    }
  }

  // (b) std::error_code locals that are filled but never examined.
  std::vector<flow::Region> regions;
  bool regionsComputed = false;
  for (std::size_t occ : findWord(text, "error_code")) {
    std::size_t cursor = skipSpaces(text, occ + 10);
    const std::size_t nameStart = cursor;
    while (cursor < text.size() && isWordChar(text[cursor])) ++cursor;
    if (cursor == nameStart) continue;
    const std::string name = text.substr(nameStart, cursor - nameStart);
    std::size_t after = skipSpaces(text, cursor);
    if (after >= text.size()) continue;
    if (text[after] != ';' && text[after] != '=') continue;
    if (text[after] == '=' && after + 1 < text.size() &&
        text[after + 1] == '=') {
      continue;  // comparison, not a declaration
    }
    const std::size_t declEnd = text.find(';', after);
    if (declEnd == std::string::npos) continue;

    if (!regionsComputed) {
      regions = flow::functionRegions(text);
      regionsComputed = true;
    }
    const auto region = flow::enclosingRegion(regions, occ);
    const std::size_t searchEnd =
        region.has_value() ? region->bodyClose : text.size();

    bool examined = false;
    for (std::size_t use : findWord(text, name)) {
      if (use <= declEnd || use >= searchEnd) continue;
      const std::size_t useEnd = use + name.size();
      const std::size_t next = skipSpaces(text, useEnd);
      if (next < text.size() && text[next] == '.') {
        examined = true;  // ec.value() / ec.message()
        break;
      }
      if (next + 1 < text.size() &&
          ((text[next] == '=' && text[next + 1] == '=') ||
           (text[next] == '!' && text[next + 1] == '='))) {
        examined = true;
        break;
      }
      const std::size_t prevIdx = prevNonSpaceIdx(text, use);
      if (prevIdx == std::string::npos) continue;
      if (text[prevIdx] == '!') {
        examined = true;  // ensure(!ec, ...)
        break;
      }
      if (text[prevIdx] == '(') {
        const std::string introducer = prevWord(text, prevIdx);
        if (introducer == "if" || introducer == "while") {
          examined = true;  // if (ec) { ... }
          break;
        }
      }
      if (isWordChar(text[prevIdx]) && prevWord(text, useEnd - name.size()) == "return") {
        examined = true;  // propagated to the caller
        break;
      }
    }
    if (examined) continue;
    pushFinding(info, occ, "H8",
                "std::error_code '" + name +
                    "' is filled but never examined; branch on it or "
                    "propagate the failure instead of silently ignoring it",
                findings);
  }
}

// ---------------------------------------------------------------------------
// H9: nondeterministic ordering sinks.
// ---------------------------------------------------------------------------

namespace {

/// Names declared as vector/span over a pointer element type.
std::set<std::string> collectPtrSequenceNames(const std::string& text) {
  std::set<std::string> names;
  for (const char* type : {"vector", "span"}) {
    for (std::size_t pos : findWord(text, type)) {
      std::size_t cursor = skipSpaces(text, pos + std::string(type).size());
      if (cursor >= text.size() || text[cursor] != '<') continue;
      const std::size_t close = findMatching(text, cursor, '<', '>');
      if (close == std::string::npos) continue;
      const std::string inner = text.substr(cursor + 1, close - cursor - 1);
      if (inner.find('*') == std::string::npos) continue;
      cursor = skipSpaces(text, close + 1);
      while (cursor < text.size() &&
             (text[cursor] == '&' || text[cursor] == '*')) {
        cursor = skipSpaces(text, cursor + 1);
      }
      const std::size_t nameStart = cursor;
      while (cursor < text.size() && isWordChar(text[cursor])) ++cursor;
      if (cursor > nameStart) {
        names.insert(text.substr(nameStart, cursor - nameStart));
      }
    }
  }
  return names;
}

/// True when the comparator lambda text orders by raw pointer address:
/// both parameters are pointers and the body compares them directly
/// (`a < b`) rather than through a dereference or member.
bool comparatorOrdersByAddress(const std::string& comparator) {
  const std::size_t capClose = comparator.find(']');
  if (comparator.empty() || comparator[0] != '[' ||
      capClose == std::string::npos) {
    return false;
  }
  const std::size_t paramOpen = comparator.find('(', capClose);
  if (paramOpen == std::string::npos) return false;
  const std::size_t paramClose =
      findMatching(comparator, paramOpen, '(', ')');
  if (paramClose == std::string::npos) return false;
  std::vector<std::string> paramNames;
  for (const std::string& piece :
       splitArgs(comparator, paramOpen + 1, paramClose)) {
    if (piece.find('*') == std::string::npos) return false;
    std::size_t end = piece.size();
    while (end > 0 && !isWordChar(piece[end - 1])) --end;
    std::size_t start = end;
    while (start > 0 && isWordChar(piece[start - 1])) --start;
    if (start == end) return false;
    paramNames.push_back(piece.substr(start, end - start));
  }
  if (paramNames.size() != 2) return false;
  const std::string body = comparator.substr(paramClose + 1);
  for (std::size_t occ : findWord(body, paramNames[0])) {
    const std::size_t op = skipSpaces(body, occ + paramNames[0].size());
    if (op >= body.size() || (body[op] != '<' && body[op] != '>')) continue;
    if (op + 1 < body.size() &&
        (body[op + 1] == body[op] || body[op + 1] == '=')) {
      continue;  // shift or <= / >= — still address order, keep checking
    }
    const std::size_t rhs = skipSpaces(body, op + 1);
    if (body.compare(rhs, paramNames[1].size(), paramNames[1]) == 0) {
      const std::size_t rhsEnd = rhs + paramNames[1].size();
      if (rhsEnd >= body.size() || !isWordChar(body[rhsEnd])) return true;
    }
  }
  return false;
}

}  // namespace

void scanH9(const FileInfo& info, std::vector<Finding>& findings) {
  if (!info.outputRelevant) return;
  const std::string& text = info.stripped;

  // (a) Sorting by pointer value.
  const std::set<std::string> ptrSequences = collectPtrSequenceNames(text);
  for (const char* fn : {"sort", "stable_sort"}) {
    for (std::size_t occ : findWord(text, fn)) {
      const std::size_t open = skipSpaces(text, occ + std::string(fn).size());
      if (open >= text.size() || text[open] != '(') continue;
      const std::size_t close = findMatching(text, open, '(', ')');
      if (close == std::string::npos) continue;
      const std::vector<std::string> args = splitArgs(text, open + 1, close);
      if (args.size() >= 3) {
        const std::string comparator = trim(args.back());
        if (comparatorOrdersByAddress(comparator)) {
          pushFinding(info, occ, "H9",
                      "comparator orders by raw pointer address; pointer "
                      "values are allocation-dependent and leak into "
                      "output order — compare a stable key instead",
                      findings);
          continue;
        }
      }
      if (args.size() == 2 && !ptrSequences.empty()) {
        const std::string first = trim(args[0]);
        if (first.find(".begin") == std::string::npos &&
            first.find("begin(") == std::string::npos) {
          continue;
        }
        const std::string name = firstIdentifier(first);
        if (name == "begin" || ptrSequences.count(name) == 0) continue;
        pushFinding(info, occ, "H9",
                    "sorts pointer sequence '" + name +
                        "' without a comparator; the default '<' orders by "
                        "allocation address — compare a stable key instead",
                    findings);
      }
    }
  }

  // (b) Unordered-container extraction that never gets sorted.
  const auto unorderedNames = collectUnorderedNames(text);
  if (unorderedNames.empty()) return;
  std::vector<flow::Region> regions;
  bool regionsComputed = false;
  std::set<std::size_t> seenLines;
  for (const auto& [name, decls] : unorderedNames) {
    (void)decls;
    for (std::size_t occ : findWord(text, name)) {
      // Match `name.begin()` as the first argument of a call/ctor with a
      // matching `name.end()`.
      std::size_t cursor = skipSpaces(text, occ + name.size());
      if (cursor >= text.size() || text[cursor] != '.') continue;
      cursor = skipSpaces(text, cursor + 1);
      if (text.compare(cursor, 5, "begin") != 0) continue;

      // Enclosing call.
      int depth = 0;
      std::size_t j = occ;
      std::size_t openParen = std::string::npos;
      while (j > 0) {
        --j;
        if (text[j] == ')' || text[j] == ']') {
          ++depth;
        } else if (text[j] == '(' || text[j] == '[') {
          if (depth == 0 && text[j] == '(') {
            openParen = j;
            break;
          }
          --depth;
        } else if (depth == 0 &&
                   (text[j] == ';' || text[j] == '{' || text[j] == '}')) {
          break;
        }
      }
      if (openParen == std::string::npos) continue;
      const std::size_t closeParen = findMatching(text, openParen, '(', ')');
      if (closeParen == std::string::npos) continue;
      const std::string inside =
          text.substr(openParen + 1, closeParen - openParen - 1);
      if (inside.find(".end") == std::string::npos ||
          findWord(inside, name).size() < 2) {
        continue;
      }
      const std::string introducer = prevWord(text, openParen);
      if (introducer == "for") continue;  // iterator loop: H1's domain
      if (introducer == "sort" || introducer == "stable_sort") continue;

      // Destination: ctor/receiver name, or the output arg of copy-style
      // algorithms.
      std::string dest;
      bool orderDependent = false;
      if (introducer == "accumulate" || introducer == "reduce" ||
          introducer == "for_each") {
        orderDependent = true;
      } else if (introducer == "copy" || introducer == "copy_n" ||
                 introducer == "transform") {
        const std::vector<std::string> args =
            splitArgs(text, openParen + 1, closeParen);
        if (!args.empty()) dest = firstIdentifier(trim(args.back()));
      } else if (introducer == "assign" || introducer == "insert") {
        // Receiver before `.assign(` — the container being filled.
        std::size_t r = openParen;
        while (r > 0 && !isWordChar(text[r - 1])) --r;
        std::size_t dotIdx = prevNonSpaceIdx(text, r - introducer.size());
        if (dotIdx != std::string::npos && text[dotIdx] == '.') {
          std::size_t e = dotIdx;
          while (e > 0 && !isWordChar(text[e - 1])) --e;
          std::size_t s = e;
          while (s > 0 && isWordChar(text[s - 1])) --s;
          dest = text.substr(s, e - s);
        }
      } else if (!introducer.empty()) {
        dest = introducer;  // `std::vector<K> keys(m.begin(), m.end());`
      }

      bool sortedLater = false;
      if (!dest.empty()) {
        if (!regionsComputed) {
          regions = flow::functionRegions(text);
          regionsComputed = true;
        }
        const auto region = flow::enclosingRegion(regions, occ);
        const std::size_t searchEnd =
            region.has_value() ? region->bodyClose : text.size();
        for (const char* fn : {"sort", "stable_sort"}) {
          for (std::size_t s : findWord(text, fn)) {
            if (s <= closeParen || s >= searchEnd) continue;
            const std::size_t sOpen =
                skipSpaces(text, s + std::string(fn).size());
            if (sOpen >= text.size() || text[sOpen] != '(') continue;
            const std::size_t sClose = findMatching(text, sOpen, '(', ')');
            if (sClose == std::string::npos) continue;
            if (!findWord(text.substr(sOpen + 1, sClose - sOpen - 1), dest)
                     .empty()) {
              sortedLater = true;
              break;
            }
          }
          if (sortedLater) break;
        }
      }
      if (sortedLater && !orderDependent) continue;
      const std::size_t line = lineOf(info, occ);
      if (!seenLines.insert(line).second) continue;
      pushFinding(
          info, occ, "H9",
          orderDependent
              ? "order-dependent algorithm '" + introducer +
                    "' consumes unordered container '" + name +
                    "' directly; hash order reaches the result — extract "
                    "and sort first"
              : "extracts unordered container '" + name + "' into '" +
                    (dest.empty() ? std::string("a temporary") : dest) +
                    "' which is never sorted in this function; hash order "
                    "reaches output — sort before use",
          findings);
    }
  }
}

}  // namespace msd::lint::internal
