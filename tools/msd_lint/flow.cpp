#include "msd_lint/flow.h"

#include <algorithm>

#include "msd_lint/internal.h"

namespace msd::lint::flow {

namespace {

using internal::findMatching;
using internal::isWordChar;
using internal::prevNonSpace;
using internal::prevWord;
using internal::skipSpaces;
using internal::trim;

/// Splits `text[begin, end)` on commas at nesting depth zero with respect
/// to (), [], and {}.
std::vector<std::string> splitTopLevel(const std::string& text,
                                       std::size_t begin, std::size_t end) {
  std::vector<std::string> parts;
  int depth = 0;
  std::size_t start = begin;
  for (std::size_t i = begin; i < end && i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
    } else if (c == ',' && depth == 0) {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (end > start) parts.push_back(text.substr(start, end - start));
  return parts;
}

/// First identifier in `s`, or empty.
std::string firstIdentifier(const std::string& s) {
  std::size_t i = 0;
  while (i < s.size() && !isWordChar(s[i])) ++i;
  const std::size_t start = i;
  while (i < s.size() && isWordChar(s[i])) ++i;
  return s.substr(start, i - start);
}

/// Last identifier in `s`, or empty.
std::string lastIdentifier(const std::string& s) {
  std::size_t end = s.size();
  while (end > 0 && !isWordChar(s[end - 1])) --end;
  std::size_t start = end;
  while (start > 0 && isWordChar(s[start - 1])) --start;
  return s.substr(start, end - start);
}

/// True when the '[' at `open` can syntactically start a lambda: the
/// preceding token must not be a postfix expression (identifier, ')',
/// ']') — those make it a subscript — and not another '[' (attribute).
bool positionAllowsLambda(const std::string& text, std::size_t open) {
  const char prev = prevNonSpace(text, open);
  if (prev == '\0') return true;
  if (isWordChar(prev)) {
    // `return [..]` and `co_return [..]` are lambdas; `name[..]` is not.
    const std::string word = prevWord(text, open);
    return word == "return" || word == "co_return" || word == "case";
  }
  return prev != ')' && prev != ']' && prev != '[';
}

void parseCaptureItem(const std::string& rawItem, Lambda& out) {
  const std::string item = trim(rawItem);
  if (item.empty()) return;
  if (item == "&") {
    out.defaultByRef = true;
    return;
  }
  if (item == "=") {
    out.defaultByValue = true;
    return;
  }
  if (item == "this") {
    out.capturesThis = true;
    return;
  }
  if (item == "*this") {
    // Copy of *this: member writes hit the copy, not shared state.
    out.valueCaptures.insert("this");
    return;
  }
  if (item[0] == '&') {
    // `&name` or `&name = expr` (ref init-capture) or `&...pack`.
    std::string rest = trim(item.substr(1));
    const std::size_t eq = rest.find('=');
    if (eq != std::string::npos) rest = rest.substr(0, eq);
    const std::string name = firstIdentifier(rest);
    if (!name.empty()) out.refCaptures.insert(name);
    return;
  }
  // `name`, `name = expr` (init-capture by value), `...pack`.
  std::string rest = item;
  const std::size_t eq = rest.find('=');
  if (eq != std::string::npos) rest = rest.substr(0, eq);
  const std::string name = firstIdentifier(rest);
  if (!name.empty()) out.valueCaptures.insert(name);
}

}  // namespace

std::optional<Lambda> parseLambdaAt(const std::string& text,
                                    std::size_t open) {
  if (open >= text.size() || text[open] != '[') return std::nullopt;
  if (!positionAllowsLambda(text, open)) return std::nullopt;
  const std::size_t close = findMatching(text, open, '[', ']');
  if (close == std::string::npos) return std::nullopt;

  Lambda lambda;
  lambda.captureOpen = open;
  lambda.captureClose = close;

  std::size_t cursor = skipSpaces(text, close + 1);
  // Generic lambda template head: []<typename T>(...).
  if (cursor < text.size() && text[cursor] == '<') {
    const std::size_t tClose = findMatching(text, cursor, '<', '>');
    if (tClose == std::string::npos) return std::nullopt;
    cursor = skipSpaces(text, tClose + 1);
  }
  std::size_t paramOpen = std::string::npos;
  if (cursor < text.size() && text[cursor] == '(') {
    paramOpen = cursor;
    const std::size_t paramClose = findMatching(text, cursor, '(', ')');
    if (paramClose == std::string::npos) return std::nullopt;
    for (const std::string& piece :
         splitTopLevel(text, paramOpen + 1, paramClose)) {
      // Parameter name: last identifier of the declarator, before any
      // default argument.
      std::string decl = piece;
      const std::size_t eq = decl.find('=');
      if (eq != std::string::npos) decl = decl.substr(0, eq);
      const std::string name = lastIdentifier(decl);
      if (!name.empty()) lambda.params.push_back(name);
    }
    cursor = skipSpaces(text, paramClose + 1);
  }
  // Skip qualifiers and trailing return type up to the body brace.
  while (cursor < text.size() && text[cursor] != '{') {
    if (text[cursor] == ';' || text[cursor] == ')' || text[cursor] == ',' ||
        text[cursor] == ']') {
      return std::nullopt;  // `arr[i]` etc. — not a lambda after all
    }
    if (text[cursor] == '(') {
      // noexcept(...) or a parenthesized trailing-return component.
      const std::size_t c = findMatching(text, cursor, '(', ')');
      if (c == std::string::npos) return std::nullopt;
      cursor = c + 1;
      continue;
    }
    if (text[cursor] == '<') {
      const std::size_t c = findMatching(text, cursor, '<', '>');
      if (c == std::string::npos) return std::nullopt;
      cursor = c + 1;
      continue;
    }
    ++cursor;
  }
  if (cursor >= text.size()) return std::nullopt;
  lambda.bodyOpen = cursor;
  const std::size_t bodyClose = findMatching(text, cursor, '{', '}');
  if (bodyClose == std::string::npos) return std::nullopt;
  lambda.bodyClose = bodyClose;

  for (const std::string& item : splitTopLevel(text, open + 1, close)) {
    parseCaptureItem(item, lambda);
  }
  return lambda;
}

std::vector<Lambda> lambdasIn(const std::string& text, std::size_t begin,
                              std::size_t end) {
  std::vector<Lambda> out;
  for (std::size_t i = begin; i < end && i < text.size(); ++i) {
    if (text[i] != '[') continue;
    std::optional<Lambda> lambda = parseLambdaAt(text, i);
    if (lambda.has_value()) {
      // Skip the capture list so `[x = arr[i]]` doesn't re-trigger on
      // the inner '['; the body stays scanned so nested lambdas appear.
      i = lambda->captureClose;
      out.push_back(std::move(*lambda));
    }
  }
  return out;
}

std::vector<Region> functionRegions(const std::string& text) {
  static const std::set<std::string> kControl = {
      "if", "for", "while", "switch", "catch", "return", "co_return",
      "sizeof", "alignof", "decltype"};
  static const std::set<std::string> kQualifier = {
      "const", "noexcept", "override", "final", "mutable", "try"};
  std::vector<Region> regions;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != ')') continue;
    // Forward: skip qualifiers / trailing return up to '{' or give up.
    std::size_t cursor = skipSpaces(text, i + 1);
    bool sawArrow = false;
    while (cursor < text.size() && text[cursor] != '{') {
      if (text[cursor] == '-' && cursor + 1 < text.size() &&
          text[cursor + 1] == '>') {
        sawArrow = true;
        cursor += 2;
        continue;
      }
      if (isWordChar(text[cursor])) {
        std::size_t wordEnd = cursor;
        while (wordEnd < text.size() && isWordChar(text[wordEnd])) ++wordEnd;
        const std::string word = text.substr(cursor, wordEnd - cursor);
        if (!sawArrow && kQualifier.count(word) == 0) break;
        cursor = skipSpaces(text, wordEnd);
        continue;
      }
      if (sawArrow && (text[cursor] == ':' || text[cursor] == '<' ||
                       text[cursor] == '&' || text[cursor] == '*' ||
                       std::isspace(static_cast<unsigned char>(
                           text[cursor])) != 0)) {
        if (text[cursor] == '<') {
          const std::size_t c = findMatching(text, cursor, '<', '>');
          if (c == std::string::npos) break;
          cursor = c + 1;
        } else {
          ++cursor;
        }
        continue;
      }
      break;
    }
    if (cursor >= text.size() || text[cursor] != '{') continue;
    // Backward: the word introducing the parens must not be control flow.
    int depth = 0;
    std::size_t openParen = std::string::npos;
    for (std::size_t j = i + 1; j-- > 0;) {
      if (text[j] == ')') {
        ++depth;
      } else if (text[j] == '(') {
        --depth;
        if (depth == 0) {
          openParen = j;
          break;
        }
      }
    }
    if (openParen == std::string::npos) continue;
    const char before = prevNonSpace(text, openParen);
    if (before == ']') continue;  // lambda: handled by lambdasIn callers
    const std::string word = prevWord(text, openParen);
    if (kControl.count(word) > 0) continue;
    const std::size_t bodyClose = findMatching(text, cursor, '{', '}');
    if (bodyClose == std::string::npos) continue;
    regions.push_back(Region{cursor, bodyClose});
  }
  return regions;
}

std::optional<Region> enclosingRegion(const std::vector<Region>& regions,
                                      std::size_t offset) {
  std::optional<Region> best;
  for (const Region& r : regions) {
    if (offset <= r.bodyOpen || offset >= r.bodyClose) continue;
    if (!best.has_value() ||
        r.bodyClose - r.bodyOpen < best->bodyClose - best->bodyOpen) {
      best = r;
    }
  }
  return best;
}

std::set<std::string> declaredNames(const std::string& text,
                                    std::size_t begin, std::size_t end) {
  // Words that end a statement rather than name a type: an identifier
  // directly after one of these is an expression, not a declaration.
  static const std::set<std::string> kNotTypes = {
      "return",   "co_return", "co_yield", "case",   "goto",   "new",
      "delete",   "throw",     "else",     "do",     "break",  "continue",
      "sizeof",   "alignof",   "typedef",  "using",  "not",    "and",
      "or",       "xor",       "if",       "while",  "for",    "switch",
      "operator", "public",    "private",  "protected"};
  std::set<std::string> names;
  std::size_t i = std::min(begin, text.size());
  const std::size_t stop = std::min(end, text.size());
  while (i < stop) {
    if (!isWordChar(text[i])) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    while (i < stop && isWordChar(text[i])) ++i;
    if (std::isdigit(static_cast<unsigned char>(text[start])) != 0) continue;
    const std::string word = text.substr(start, i - start);
    // Structured bindings: `auto [a, b]` / `auto& [k, v]`.
    if (word == "auto") {
      std::size_t cursor = skipSpaces(text, i);
      while (cursor < stop &&
             (text[cursor] == '&' || text[cursor] == '*')) {
        cursor = skipSpaces(text, cursor + 1);
      }
      if (cursor < stop && text[cursor] == '[') {
        const std::size_t close = findMatching(text, cursor, '[', ']');
        if (close != std::string::npos && close < stop) {
          for (const std::string& ident : internal::identifiersIn(
                   text.substr(cursor + 1, close - cursor - 1))) {
            names.insert(ident);
          }
        }
      }
      continue;
    }
    const char prevCh = prevNonSpace(text, start);
    if (prevCh == '>') {
      // `vector<T> v` — the closing angle of a template type.
      names.insert(word);
      continue;
    }
    if (prevCh == '&' || prevCh == '*') {
      // Declarator decoration (`auto& x`, `T* p`) — but only when a
      // type actually precedes the decoration. `*p += 1;` at statement
      // position is a dereference, not a declaration.
      std::size_t j = start;
      while (j > 0 &&
             (text[j - 1] == ' ' || text[j - 1] == '\t' ||
              text[j - 1] == '\n' || text[j - 1] == '&' ||
              text[j - 1] == '*')) {
        --j;
      }
      if (j > 0 && text[j - 1] == '>') {
        names.insert(word);
      } else if (j > 0 && isWordChar(text[j - 1])) {
        const std::string prev = prevWord(text, j);
        if (!prev.empty() && kNotTypes.count(prev) == 0 &&
            std::isdigit(static_cast<unsigned char>(prev[0])) == 0) {
          names.insert(word);
        }
      }
      continue;
    }
    if (isWordChar(prevCh)) {
      const std::string prev = prevWord(text, start);
      if (!prev.empty() && kNotTypes.count(prev) == 0 &&
          std::isdigit(static_cast<unsigned char>(prev[0])) == 0) {
        // Two adjacent identifiers: `Type name`.
        names.insert(word);
      }
    }
  }
  return names;
}

bool mentionsAny(const std::string& expr, const std::set<std::string>& names) {
  if (names.empty()) return false;
  for (const std::string& ident : internal::identifiersIn(expr)) {
    if (names.count(ident) > 0) return true;
  }
  return false;
}

}  // namespace msd::lint::flow
