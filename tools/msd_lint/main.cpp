// msd_lint CLI: scans src/, tools/ and bench/ under --root for the H1–H9
// determinism/safety hazards (see lint.h) and prints `file:line: [H#]
// message` per finding, or a SARIF 2.1.0 document with --format=sarif.
// With --diff-baseline the exit status ratchets against the committed
// baseline: new findings fail, and stale baseline entries (fixed
// findings that were not removed) fail too.
// Exit code 0 = clean, 1 = findings / baseline drift, 2 = usage or I/O
// error (including a malformed or missing baseline).

#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "msd_lint/baseline.h"
#include "msd_lint/lint.h"
#include "msd_lint/sarif.h"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: msd_lint [--root=DIR] [--suppressions=FILE] [--subdirs=a,b,c]\n"
      "                [--format=text|sarif] [--baseline=FILE]\n"
      "                [--diff-baseline] [--write-baseline] [--verbose]\n"
      "  --root=DIR           tree to scan (default: .)\n"
      "  --suppressions=FILE  suppression list (default: "
      "ROOT/tools/msd_lint_suppressions.txt if present)\n"
      "  --subdirs=a,b,c      root-relative dirs to scan "
      "(default: src,tools,bench)\n"
      "  --format=text|sarif  output format (default: text)\n"
      "  --baseline=FILE      baseline path (default: "
      "ROOT/tools/msd_lint_baseline.json)\n"
      "  --diff-baseline      ratchet: fail on findings not accepted by "
      "the baseline AND on stale baseline entries\n"
      "  --write-baseline     regenerate the baseline from this scan and "
      "exit\n"
      "  --verbose            also print suppressed findings (text mode)\n");
}

std::vector<std::string> splitCommas(const std::string& value) {
  std::vector<std::string> out;
  std::istringstream in(value);
  std::string part;
  while (std::getline(in, part, ',')) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

std::string readFileOrThrow(const std::string& path, const char* what) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw std::runtime_error(std::string("msd_lint: cannot open ") + what +
                             ": " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string suppressionsPath;
  bool suppressionsExplicit = false;
  std::string baselinePath;
  bool baselineExplicit = false;
  std::vector<std::string> subdirs = {"src", "tools", "bench"};
  std::string format = "text";
  bool diffBaseline = false;
  bool writeBaseline = false;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--suppressions=", 0) == 0) {
      suppressionsPath = arg.substr(15);
      suppressionsExplicit = true;
    } else if (arg.rfind("--subdirs=", 0) == 0) {
      subdirs = splitCommas(arg.substr(10));
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baselinePath = arg.substr(11);
      baselineExplicit = true;
    } else if (arg == "--diff-baseline") {
      diffBaseline = true;
    } else if (arg == "--write-baseline") {
      writeBaseline = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "msd_lint: unknown argument: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (subdirs.empty()) {
    std::fprintf(stderr, "msd_lint: --subdirs must name at least one dir\n");
    return 2;
  }
  if (format != "text" && format != "sarif") {
    std::fprintf(stderr, "msd_lint: unknown format: %s\n", format.c_str());
    return 2;
  }
  if (diffBaseline && writeBaseline) {
    std::fprintf(stderr,
                 "msd_lint: --diff-baseline and --write-baseline are "
                 "mutually exclusive\n");
    return 2;
  }
  if (!suppressionsExplicit) {
    const std::filesystem::path candidate =
        std::filesystem::path(root) / "tools" / "msd_lint_suppressions.txt";
    if (std::filesystem::is_regular_file(candidate)) {
      suppressionsPath = candidate.string();
    }
  }
  if (!baselineExplicit) {
    baselinePath = (std::filesystem::path(root) / "tools" /
                    "msd_lint_baseline.json")
                       .string();
  }

  try {
    std::vector<msd::lint::Suppression> suppressions;
    if (!suppressionsPath.empty()) {
      suppressions = msd::lint::parseSuppressions(
          readFileOrThrow(suppressionsPath, "suppressions file"));
    }

    const std::vector<msd::lint::Finding> findings =
        msd::lint::scanTree(root, subdirs, suppressions);

    if (writeBaseline) {
      std::ofstream out(baselinePath, std::ios::binary | std::ios::trunc);
      if (!out.good()) {
        throw std::runtime_error("msd_lint: cannot write baseline: " +
                                 baselinePath);
      }
      out << msd::lint::writeBaseline(findings);
      std::fprintf(stderr, "msd_lint: baseline written: %s\n",
                   baselinePath.c_str());
      return 0;
    }

    std::size_t active = 0;
    std::size_t suppressed = 0;
    for (const msd::lint::Finding& f : findings) {
      if (f.suppressed) {
        ++suppressed;
      } else {
        ++active;
      }
    }

    if (format == "sarif") {
      std::printf("%s", msd::lint::toSarif(findings).c_str());
    } else {
      for (const msd::lint::Finding& f : findings) {
        if (f.suppressed) {
          if (verbose) {
            std::printf("%s [suppressed: %s]\n",
                        msd::lint::formatFinding(f).c_str(),
                        f.suppressReason.c_str());
          }
          continue;
        }
        std::printf("%s\n", msd::lint::formatFinding(f).c_str());
      }
    }
    std::fprintf(stderr, "msd_lint: %zu finding(s), %zu suppressed\n",
                 active, suppressed);

    if (diffBaseline) {
      const std::vector<msd::lint::BaselineEntry> baseline =
          msd::lint::parseBaseline(
              readFileOrThrow(baselinePath, "baseline"));
      const msd::lint::BaselineDiff diff =
          msd::lint::diffBaseline(findings, baseline);
      for (const std::string& entry : diff.newFindings) {
        std::fprintf(stderr, "msd_lint: new vs baseline: %s\n",
                     entry.c_str());
      }
      for (const std::string& entry : diff.staleEntries) {
        std::fprintf(stderr, "msd_lint: stale baseline entry: %s\n",
                     entry.c_str());
      }
      if (!diff.clean()) {
        std::fprintf(stderr,
                     "msd_lint: baseline drift (%zu new, %zu stale); fix "
                     "the findings or regenerate with --write-baseline\n",
                     diff.newFindings.size(), diff.staleEntries.size());
        return 1;
      }
      return 0;
    }
    return active == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
