// msd_lint CLI: scans src/, tools/ and bench/ under --root for the H1–H5
// determinism hazards (see lint.h) and prints `file:line: [H#] message`
// for each finding. Exit code 0 = clean, 1 = unsuppressed findings,
// 2 = usage or I/O error.

#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "msd_lint/lint.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: msd_lint [--root=DIR] [--suppressions=FILE] "
               "[--subdirs=a,b,c] [--verbose]\n"
               "  --root=DIR           tree to scan (default: .)\n"
               "  --suppressions=FILE  suppression list (default: "
               "ROOT/tools/msd_lint_suppressions.txt if present)\n"
               "  --subdirs=a,b,c      root-relative dirs to scan "
               "(default: src,tools,bench)\n"
               "  --verbose            also print suppressed findings\n");
}

std::vector<std::string> splitCommas(const std::string& value) {
  std::vector<std::string> out;
  std::istringstream in(value);
  std::string part;
  while (std::getline(in, part, ',')) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string suppressionsPath;
  bool suppressionsExplicit = false;
  std::vector<std::string> subdirs = {"src", "tools", "bench"};
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--suppressions=", 0) == 0) {
      suppressionsPath = arg.substr(15);
      suppressionsExplicit = true;
    } else if (arg.rfind("--subdirs=", 0) == 0) {
      subdirs = splitCommas(arg.substr(10));
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "msd_lint: unknown argument: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (subdirs.empty()) {
    std::fprintf(stderr, "msd_lint: --subdirs must name at least one dir\n");
    return 2;
  }
  if (!suppressionsExplicit) {
    const std::filesystem::path candidate =
        std::filesystem::path(root) / "tools" / "msd_lint_suppressions.txt";
    if (std::filesystem::is_regular_file(candidate)) {
      suppressionsPath = candidate.string();
    }
  }

  try {
    std::vector<msd::lint::Suppression> suppressions;
    if (!suppressionsPath.empty()) {
      std::ifstream in(suppressionsPath, std::ios::binary);
      if (!in.good()) {
        std::fprintf(stderr, "msd_lint: cannot open suppressions file: %s\n",
                     suppressionsPath.c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      suppressions = msd::lint::parseSuppressions(buffer.str());
    }

    const std::vector<msd::lint::Finding> findings =
        msd::lint::scanTree(root, subdirs, suppressions);
    std::size_t active = 0;
    std::size_t suppressed = 0;
    for (const msd::lint::Finding& f : findings) {
      if (f.suppressed) {
        ++suppressed;
        if (verbose) {
          std::printf("%s [suppressed: %s]\n",
                      msd::lint::formatFinding(f).c_str(),
                      f.suppressReason.c_str());
        }
        continue;
      }
      ++active;
      std::printf("%s\n", msd::lint::formatFinding(f).c_str());
    }
    std::printf("msd_lint: %zu finding(s), %zu suppressed\n", active,
                suppressed);
    return active == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
