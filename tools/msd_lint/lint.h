#pragma once

// msd_lint: repo-specific determinism/static-hazard linter.
//
// A plain token/regex-level scanner (no libclang) with include-graph
// awareness, covering the hazard classes that have bitten — or would
// silently bite — the deterministic parallel pipeline:
//
//   H1  range-for / iterator loops over std::unordered_map/unordered_set
//       in output-relevant files (files whose translation unit serializes
//       or reduces data — see below). Hash iteration order leaking into
//       serialized or reduced output breaks the bit-identical-results
//       contract across standard libraries and seeds.
//   H2  banned nondeterminism sources outside src/obs/ and bench/:
//       rand(), srand(), std::random_device, time(nullptr), and
//       std::chrono::*::now(). All randomness must flow through
//       Rng::stream; all timing through the observability layer.
//   H3  floating-point `+=` accumulation into a by-reference capture
//       inside a parallelFor/parallelForChunks body. Cross-chunk FP
//       accumulation must go through parallelReduce to keep combine
//       order fixed.
//   H4  thread_local / std::this_thread::get_id outside
//       src/util/parallel.* and src/obs/ — worker identity leaking into
//       results makes output depend on scheduling.
//   H5  raw std::thread/pthread construction outside src/util/parallel.*
//       and src/obs/ — all parallelism must go through the shared pool,
//       which owns the determinism contract.
//
// H6–H9 are flow-aware (flow.h parses function regions, lambda capture
// lists, and local declarations; flow_passes.cpp reasons over them):
//
//   H6  any write (push_back, insert, operator[], =, +=, ...) to a
//       by-ref-captured or value-captured-pointer variable inside a
//       parallelFor/parallelForChunks/pool.run lambda that is not the
//       disjoint-slot idiom (indexed by the induction variable), an
//       std::atomic operation, or a parallelReduce partial.
//       Generalizes H3 beyond FP accumulation.
//   H7  raw wire-parse byte access in src/io/ (subscript, pointer
//       arithmetic, memcpy/memcmp/memmove on mapped bytes) not
//       dominated by a bounds/remaining check in the same function and
//       not routed through the checked wire.h readers (the sanctioned
//       raw-byte touchpoint).
//   H8  discarded error-bearing results: statement-position calls to
//       parse*/read*/open*/write* whose return is ignored, and
//       std::error_code out-parameters never examined afterwards.
//       `(void)call();  // msd-lint: allow(H8: reason)` is the explicit
//       waiver shape.
//   H9  nondeterministic ordering sinks: std::sort over pointers or
//       with an address comparator, and unordered_* contents extracted
//       into an output-relevant path without a subsequent sort.
//
// Output-relevance (H1) is computed from the include graph: every
// translation unit whose transitive include closure contains a
// serialization header (<cstdio>, <iostream>, <fstream>, <ostream>,
// io/csv.h, io/event_io.h, io/graph_io.h, obs/json.h, obs/registry.h) or
// a parallelReduce call marks itself and its whole closure as
// output-relevant; a .cpp is additionally marked when its companion
// header is.
//
// Suppressions:
//   inline, same line or the line immediately above the finding:
//     // msd-lint: ordered-ok(reason)        — suppresses H1
//     // msd-lint: allow(H2: reason)         — suppresses the named class
//   checked-in file (one grandfathered site class per line):
//     H2 src/util/stopwatch.h reason text...
//
// The CLI also emits SARIF 2.1.0 (--format=sarif) and enforces the
// committed ratchet baseline (tools/msd_lint_baseline.json):
// --diff-baseline fails on new findings AND on baseline entries that no
// longer reproduce; --write-baseline regenerates the file.
//
// Exit codes of the CLI: 0 = clean (every finding suppressed, baseline
// matches), 1 = new findings or baseline drift, 2 = usage/I/O error or
// a malformed baseline.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace msd::lint {

/// One hazard hit (suppressed or not).
struct Finding {
  std::string file;    ///< path relative to the scan root, '/'-separated
  std::size_t line = 0;///< 1-based
  std::string hazard;  ///< "H1".."H9"
  std::string message;
  bool suppressed = false;
  std::string suppressReason;  ///< why, when suppressed
};

/// One suppression-file entry: `hazard pathSuffix reason...`.
struct Suppression {
  std::string hazard;
  std::string pathSuffix;  ///< matches a path equal to or ending with this
  std::string reason;
};

/// Parses the suppression-file format: one `H# path reason` entry per
/// line; blank lines and lines starting with '#' are ignored. Throws
/// std::runtime_error on malformed entries (unknown hazard, missing
/// fields).
std::vector<Suppression> parseSuppressions(const std::string& text);

/// In-memory source file handed to the scanner.
struct SourceFile {
  std::string path;  ///< root-relative, '/'-separated (e.g. "src/a/b.cpp")
  std::string text;
};

/// Scans a set of source files as one tree. Findings are ordered by
/// (path, line). Suppressed findings are included with suppressed=true.
std::vector<Finding> scanFiles(const std::vector<SourceFile>& files,
                               const std::vector<Suppression>& suppressions);

/// Collects the .h/.hpp/.cpp/.cc files under root/{src,tools,bench} (or
/// the given root-relative subdirectories), reads them, and scans them.
/// Throws std::runtime_error when the root or a requested subdirectory
/// does not exist.
std::vector<Finding> scanTree(const std::string& root,
                              const std::vector<std::string>& subdirs,
                              const std::vector<Suppression>& suppressions);

/// Strips comments and string/char literals, preserving line structure
/// (every stripped character becomes a space, newlines survive) so byte
/// offsets keep mapping to the same line numbers. Handles //, /*...*/,
/// "...", '...', and R"delim(...)delim". Exposed for tests.
std::string stripCommentsAndStrings(const std::string& text);

/// True when `findings` contains at least one unsuppressed entry.
bool hasActiveFindings(const std::vector<Finding>& findings);

/// Formats one finding as `file:line: [H#] message`.
std::string formatFinding(const Finding& finding);

}  // namespace msd::lint
