#pragma once

// msd_lint: repo-specific determinism/static-hazard linter.
//
// A plain token/regex-level scanner (no libclang) with include-graph
// awareness, covering the hazard classes that have bitten — or would
// silently bite — the deterministic parallel pipeline:
//
//   H1  range-for / iterator loops over std::unordered_map/unordered_set
//       in output-relevant files (files whose translation unit serializes
//       or reduces data — see below). Hash iteration order leaking into
//       serialized or reduced output breaks the bit-identical-results
//       contract across standard libraries and seeds.
//   H2  banned nondeterminism sources outside src/obs/ and bench/:
//       rand(), srand(), std::random_device, time(nullptr), and
//       std::chrono::*::now(). All randomness must flow through
//       Rng::stream; all timing through the observability layer.
//   H3  floating-point `+=` accumulation into a by-reference capture
//       inside a parallelFor/parallelForChunks body. Cross-chunk FP
//       accumulation must go through parallelReduce to keep combine
//       order fixed.
//   H4  thread_local / std::this_thread::get_id outside
//       src/util/parallel.* and src/obs/ — worker identity leaking into
//       results makes output depend on scheduling.
//   H5  raw std::thread/pthread construction outside src/util/parallel.*
//       and src/obs/ — all parallelism must go through the shared pool,
//       which owns the determinism contract.
//
// Output-relevance (H1) is computed from the include graph: every
// translation unit whose transitive include closure contains a
// serialization header (<cstdio>, <iostream>, <fstream>, <ostream>,
// io/csv.h, io/event_io.h, io/graph_io.h, obs/json.h, obs/registry.h) or
// a parallelReduce call marks itself and its whole closure as
// output-relevant; a .cpp is additionally marked when its companion
// header is.
//
// Suppressions:
//   inline, same line or the line immediately above the finding:
//     // msd-lint: ordered-ok(reason)        — suppresses H1
//     // msd-lint: allow(H2: reason)         — suppresses the named class
//   checked-in file (one grandfathered site class per line):
//     H2 src/util/stopwatch.h reason text...
//
// Exit codes of the CLI: 0 = clean (every finding suppressed), 1 = new
// findings, 2 = usage or I/O error.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace msd::lint {

/// One hazard hit (suppressed or not).
struct Finding {
  std::string file;    ///< path relative to the scan root, '/'-separated
  std::size_t line = 0;///< 1-based
  std::string hazard;  ///< "H1".."H5"
  std::string message;
  bool suppressed = false;
  std::string suppressReason;  ///< why, when suppressed
};

/// One suppression-file entry: `hazard pathSuffix reason...`.
struct Suppression {
  std::string hazard;
  std::string pathSuffix;  ///< matches a path equal to or ending with this
  std::string reason;
};

/// Parses the suppression-file format: one `H# path reason` entry per
/// line; blank lines and lines starting with '#' are ignored. Throws
/// std::runtime_error on malformed entries (unknown hazard, missing
/// fields).
std::vector<Suppression> parseSuppressions(const std::string& text);

/// In-memory source file handed to the scanner.
struct SourceFile {
  std::string path;  ///< root-relative, '/'-separated (e.g. "src/a/b.cpp")
  std::string text;
};

/// Scans a set of source files as one tree. Findings are ordered by
/// (path, line). Suppressed findings are included with suppressed=true.
std::vector<Finding> scanFiles(const std::vector<SourceFile>& files,
                               const std::vector<Suppression>& suppressions);

/// Collects the .h/.hpp/.cpp/.cc files under root/{src,tools,bench} (or
/// the given root-relative subdirectories), reads them, and scans them.
/// Throws std::runtime_error when the root or a requested subdirectory
/// does not exist.
std::vector<Finding> scanTree(const std::string& root,
                              const std::vector<std::string>& subdirs,
                              const std::vector<Suppression>& suppressions);

/// Strips comments and string/char literals, preserving line structure
/// (every stripped character becomes a space, newlines survive) so byte
/// offsets keep mapping to the same line numbers. Handles //, /*...*/,
/// "...", '...', and R"delim(...)delim". Exposed for tests.
std::string stripCommentsAndStrings(const std::string& text);

/// True when `findings` contains at least one unsuppressed entry.
bool hasActiveFindings(const std::vector<Finding>& findings);

/// Formats one finding as `file:line: [H#] message`.
std::string formatFinding(const Finding& finding);

}  // namespace msd::lint
