#pragma once

// Flow-layer parsing primitives for the H6-H9 passes: a lambda
// capture-list/parameter parser, a brace-matched function-region finder,
// and a heuristic local-declaration collector. All of it operates on the
// comment/string-stripped text (offsets are preserved, so results map
// straight to line numbers). This is deliberately not a C++ parser — it
// understands exactly enough structure to reason about captures,
// enclosing scopes, and declared names with zero false positives on the
// shipped tree; the fixture tests pin the supported shapes.

#include <cstddef>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace msd::lint::flow {

/// One parsed lambda expression. Offsets index into the stripped text.
struct Lambda {
  std::size_t captureOpen = 0;   ///< offset of '['
  std::size_t captureClose = 0;  ///< offset of matching ']'
  std::size_t bodyOpen = 0;      ///< offset of the body '{'
  std::size_t bodyClose = 0;     ///< offset of the matching '}'
  bool defaultByRef = false;     ///< [&] / [&, ...]
  bool defaultByValue = false;   ///< [=] / [=, ...]
  bool capturesThis = false;     ///< [this] or [&...] in a member function
  std::set<std::string> refCaptures;    ///< [&x] and [&x = expr]
  std::set<std::string> valueCaptures;  ///< [x], [x = expr], [*this]
  std::vector<std::string> params;      ///< declared parameter names
};

/// Parses the lambda whose capture list opens at `open` (which must be a
/// '['). Returns std::nullopt when the brackets do not introduce a lambda
/// (subscript, attribute, unbalanced text).
std::optional<Lambda> parseLambdaAt(const std::string& text,
                                    std::size_t open);

/// All lambdas whose capture list starts in [begin, end), in order.
/// Nested lambdas are included (a lambda inside another lambda's body
/// produces its own entry).
std::vector<Lambda> lambdasIn(const std::string& text, std::size_t begin,
                              std::size_t end);

/// A brace-delimited body region: function, constructor, or lambda body.
struct Region {
  std::size_t bodyOpen = 0;   ///< offset of '{'
  std::size_t bodyClose = 0;  ///< offset of matching '}'
};

/// Finds function-ish body regions: every `...) {` whose introducing
/// word is not a control-flow keyword (if/for/while/switch/catch).
/// Constructor bodies resolve to the brace after the last initializer.
std::vector<Region> functionRegions(const std::string& text);

/// The innermost region containing `offset`, if any.
std::optional<Region> enclosingRegion(const std::vector<Region>& regions,
                                      std::size_t offset);

/// Heuristic set of names declared in [begin, end): an identifier whose
/// preceding token is a type-ish word (not a statement keyword) or a
/// declarator decoration (&, *, >), plus structured bindings
/// (`auto [a, b]`). Over-approximates on purpose — treating a name as
/// locally declared only ever silences a finding.
std::set<std::string> declaredNames(const std::string& text,
                                    std::size_t begin, std::size_t end);

/// True when any identifier in `expr` is in `names`.
bool mentionsAny(const std::string& expr, const std::set<std::string>& names);

}  // namespace msd::lint::flow
