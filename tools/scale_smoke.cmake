# Paper-scale smoke: generate a 1e6-node trace straight to msd-bin-v1,
# stream-convert it, and replay the incremental Fig 1 series from the
# converted file — asserting after every phase that the process peak RSS
# (the mem.high_water_bytes gauge in the --trace-json report) stayed
# under a ceiling far below what materializing the full EventStream
# would need. This is the out-of-core contract as a ctest entry: if a
# future change sneaks an O(events) buffer back into the generate,
# convert, or series path, the ceiling trips. Driven by the
# `scale_smoke` ctest entry (see tools/CMakeLists.txt) and by
# tools/check.sh --full.
#
# Required -D variables:
#   MSDYN     path to the msdyn binary
#   OUT_DIR   scratch directory for the trace + trace-json reports
#
# Optional:
#   NODES              target node count          (default 1000000)
#   MEM_CEILING_BYTES  per-phase peak-RSS ceiling (default 700000000)
#
# Ceiling rationale: the 1e6-node trace holds ~1.05e7 events. Measured
# peaks (2026-08, bench/scale_sweep): generate 287 MB, convert 118 MB,
# streaming series 503 MB — dominated by graph/engine state, not by
# events. The in-memory replay of the same trace (EventStream at
# 24 B/event ~= 251 MB on top) peaks at 766 MB, so 700 MB passes the
# streaming path with ~40% headroom while failing any change that
# materializes the full event stream.

foreach(var MSDYN OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "scale_smoke: missing -D${var}=...")
  endif()
endforeach()
if(NOT DEFINED NODES)
  set(NODES 1000000)
endif()
if(NOT DEFINED MEM_CEILING_BYTES)
  set(MEM_CEILING_BYTES 700000000)
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(trace "${OUT_DIR}/scale_smoke.msdbin")
set(converted "${OUT_DIR}/scale_smoke_converted.msdbin")

# Reads mem.high_water_bytes out of a --trace-json report and fails when
# it exceeds the ceiling.
function(assert_mem_under report phase)
  file(READ "${report}" text)
  string(REGEX MATCH "\"mem\\.high_water_bytes\": ([0-9]+)" _ "${text}")
  if(NOT CMAKE_MATCH_1)
    message(FATAL_ERROR
            "scale_smoke: ${phase}: no mem.high_water_bytes in ${report}")
  endif()
  set(peak ${CMAKE_MATCH_1})
  if(peak GREATER ${MEM_CEILING_BYTES})
    message(FATAL_ERROR
            "scale_smoke: ${phase}: peak RSS ${peak} bytes exceeds the "
            "${MEM_CEILING_BYTES}-byte ceiling — an O(events) buffer has "
            "crept into the streaming path")
  endif()
  message(STATUS
          "scale_smoke: ${phase}: peak RSS ${peak} bytes (ceiling "
          "${MEM_CEILING_BYTES})")
endfunction()

message(STATUS "scale_smoke: generate --nodes=${NODES} --format=bin")
execute_process(
  COMMAND "${MSDYN}" generate "--nodes=${NODES}" --format=bin --seed=1
          "--out=${trace}" "--trace-json=${OUT_DIR}/generate.json"
  RESULT_VARIABLE status
  OUTPUT_QUIET
)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "scale_smoke: generate failed (exit ${status})")
endif()
assert_mem_under("${OUT_DIR}/generate.json" "generate")

message(STATUS "scale_smoke: convert (streaming msdbin -> msdbin)")
execute_process(
  COMMAND "${MSDYN}" convert "${trace}" "${converted}"
          "--trace-json=${OUT_DIR}/convert.json"
  RESULT_VARIABLE status
  OUTPUT_QUIET
)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "scale_smoke: convert failed (exit ${status})")
endif()
assert_mem_under("${OUT_DIR}/convert.json" "convert")

message(STATUS "scale_smoke: series (streaming incremental metrics)")
execute_process(
  COMMAND "${MSDYN}" series "${converted}" --step=7 --path-every=77
          --path-samples=4 --clustering-samples=100
          "--trace-json=${OUT_DIR}/series.json"
  RESULT_VARIABLE status
  OUTPUT_QUIET
)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "scale_smoke: series failed (exit ${status})")
endif()
assert_mem_under("${OUT_DIR}/series.json" "series")

file(REMOVE "${trace}" "${converted}")
message(STATUS "scale_smoke: all phases under the memory ceiling")
