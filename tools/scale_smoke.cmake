# Paper-scale smoke: generate a 1e6-node trace straight to msd-bin-v1,
# stream-convert it, and replay the incremental Fig 1 series from the
# converted file — asserting after every phase that the process peak RSS
# (the mem.high_water_bytes gauge in the --trace-json report) stayed
# under a ceiling far below what materializing the full EventStream
# would need. This is the out-of-core contract as a ctest entry: if a
# future change sneaks an O(events) buffer back into the generate,
# convert, or series path, the ceiling trips. Driven by the
# `scale_smoke` ctest entry (see tools/CMakeLists.txt) and by
# tools/check.sh --full.
#
# The generate phase also runs the live stats sampler
# (--stats-json --stats-interval-ms=50) and asserts the msd-stats-v1
# acceptance contract: at least 5 valid samples, a mem.high_water_bytes
# gauge series, and an io.events_written/s throughput series — then
# proves the determinism contract by regenerating WITHOUT sampling at
# 1, 2, and 8 threads and demanding each artifact's event payload
# SHA256 matches the sampled run's (the embedded manifest header
# records the differing command lines and is excluded).
#
# Required -D variables:
#   MSDYN     path to the msdyn binary
#   OUT_DIR   scratch directory for the trace + trace-json reports
#
# Optional:
#   BENCH_COMPARE      bench_compare binary; runs --validate on the
#                      stats series when set
#   NODES              target node count          (default 1000000)
#   MEM_CEILING_BYTES  per-phase peak-RSS ceiling (default 700000000)
#
# Ceiling rationale: the 1e6-node trace holds ~1.05e7 events. Measured
# peaks (2026-08, bench/scale_sweep): generate 287 MB, convert 118 MB,
# streaming series 503 MB — dominated by graph/engine state, not by
# events. The in-memory replay of the same trace (EventStream at
# 24 B/event ~= 251 MB on top) peaks at 766 MB, so 700 MB passes the
# streaming path with ~40% headroom while failing any change that
# materializes the full event stream.

foreach(var MSDYN OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "scale_smoke: missing -D${var}=...")
  endif()
endforeach()
if(NOT DEFINED NODES)
  set(NODES 1000000)
endif()
if(NOT DEFINED MEM_CEILING_BYTES)
  set(MEM_CEILING_BYTES 700000000)
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(trace "${OUT_DIR}/scale_smoke.msdbin")
set(converted "${OUT_DIR}/scale_smoke_converted.msdbin")

# Reads mem.high_water_bytes out of a --trace-json report and fails when
# it exceeds the ceiling.
function(assert_mem_under report phase)
  file(READ "${report}" text)
  string(REGEX MATCH "\"mem\\.high_water_bytes\": ([0-9]+)" _ "${text}")
  if(NOT CMAKE_MATCH_1)
    message(FATAL_ERROR
            "scale_smoke: ${phase}: no mem.high_water_bytes in ${report}")
  endif()
  set(peak ${CMAKE_MATCH_1})
  if(peak GREATER ${MEM_CEILING_BYTES})
    message(FATAL_ERROR
            "scale_smoke: ${phase}: peak RSS ${peak} bytes exceeds the "
            "${MEM_CEILING_BYTES}-byte ceiling — an O(events) buffer has "
            "crept into the streaming path")
  endif()
  message(STATUS
          "scale_smoke: ${phase}: peak RSS ${peak} bytes (ceiling "
          "${MEM_CEILING_BYTES})")
endfunction()

set(stats "${OUT_DIR}/generate_stats.jsonl")
message(STATUS
        "scale_smoke: generate --nodes=${NODES} --format=bin "
        "--stats-json --stats-interval-ms=50")
execute_process(
  COMMAND "${MSDYN}" generate "--nodes=${NODES}" --format=bin --seed=1
          "--out=${trace}" "--trace-json=${OUT_DIR}/generate.json"
          "--stats-json=${stats}" --stats-interval-ms=50
  RESULT_VARIABLE status
  OUTPUT_QUIET
)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "scale_smoke: generate failed (exit ${status})")
endif()
assert_mem_under("${OUT_DIR}/generate.json" "generate")

# msd-stats-v1 acceptance: schema-valid, >= 5 samples, and both the
# memory gauge and the events/s throughput series present. summarize is
# also the validator (exit 2 on any schema violation).
if(DEFINED BENCH_COMPARE)
  execute_process(
    COMMAND "${BENCH_COMPARE}" --validate "${stats}"
    RESULT_VARIABLE status
    OUTPUT_QUIET
  )
  if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "scale_smoke: bench_compare --validate rejected ${stats} "
            "(exit ${status})")
  endif()
endif()
execute_process(
  COMMAND "${MSDYN}" stats summarize "${stats}"
  RESULT_VARIABLE status
  OUTPUT_VARIABLE summary
)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "scale_smoke: stats summarize failed (exit ${status})")
endif()
string(REGEX MATCH "msd-stats-v1: ([0-9]+) samples" _ "${summary}")
set(sample_count "${CMAKE_MATCH_1}")
if(NOT sample_count OR sample_count LESS 5)
  message(FATAL_ERROR
          "scale_smoke: expected >= 5 stats samples, summarize said: "
          "${summary}")
endif()
foreach(series "gauges.mem.high_water_bytes" "rates.io.events_written")
  if(NOT summary MATCHES "${series}: n=")
    message(FATAL_ERROR
            "scale_smoke: stats series ${series} missing from ${stats}")
  endif()
endforeach()
message(STATUS
        "scale_smoke: stats series valid (${sample_count} samples, "
        "memory gauge + events/s present)")

# SHA256 of everything past the msd-bin-v1 file header (the u32 at
# offset 12 is the first block's offset). The header embeds the
# msd-run-v1 manifest — command line and thread count — which differs
# between the compared runs BY DESIGN; the event payload is the
# determinism contract. (obs_stats_test separately proves whole-file
# identity when the manifests agree.)
function(payload_sha path out_var)
  file(READ "${path}" raw OFFSET 12 LIMIT 4 HEX)
  string(SUBSTRING "${raw}" 0 2 b0)
  string(SUBSTRING "${raw}" 2 2 b1)
  string(SUBSTRING "${raw}" 4 2 b2)
  string(SUBSTRING "${raw}" 6 2 b3)
  math(EXPR header_bytes "0x${b3}${b2}${b1}${b0}")  # little-endian u32
  file(READ "${path}" payload OFFSET ${header_bytes} HEX)
  string(SHA256 sha "${payload}")
  set(${out_var} "${sha}" PARENT_SCOPE)
endfunction()

# Determinism contract: the event payload the sampled run wrote must be
# byte-identical to unsampled regenerations at 1, 2, and 8 threads.
payload_sha("${trace}" sampled_sha)
foreach(threads 1 2 8)
  set(replica "${OUT_DIR}/scale_smoke_t${threads}.msdbin")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env "MSD_THREADS=${threads}"
            "${MSDYN}" generate "--nodes=${NODES}" --format=bin --seed=1
            "--out=${replica}"
    RESULT_VARIABLE status
    OUTPUT_QUIET
  )
  if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "scale_smoke: unsampled generate at ${threads} threads failed "
            "(exit ${status})")
  endif()
  payload_sha("${replica}" replica_sha)
  file(REMOVE "${replica}")
  if(NOT replica_sha STREQUAL sampled_sha)
    message(FATAL_ERROR
            "scale_smoke: event payload diverged at ${threads} threads "
            "without sampling (${replica_sha} vs ${sampled_sha}) — the "
            "stats sampler perturbed a primary output")
  endif()
  message(STATUS
          "scale_smoke: ${threads}-thread unsampled payload byte-identical")
endforeach()

message(STATUS "scale_smoke: convert (streaming msdbin -> msdbin)")
execute_process(
  COMMAND "${MSDYN}" convert "${trace}" "${converted}"
          "--trace-json=${OUT_DIR}/convert.json"
  RESULT_VARIABLE status
  OUTPUT_QUIET
)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "scale_smoke: convert failed (exit ${status})")
endif()
assert_mem_under("${OUT_DIR}/convert.json" "convert")

message(STATUS "scale_smoke: series (streaming incremental metrics)")
execute_process(
  COMMAND "${MSDYN}" series "${converted}" --step=7 --path-every=77
          --path-samples=4 --clustering-samples=100
          "--trace-json=${OUT_DIR}/series.json"
  RESULT_VARIABLE status
  OUTPUT_QUIET
)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "scale_smoke: series failed (exit ${status})")
endif()
assert_mem_under("${OUT_DIR}/series.json" "series")

file(REMOVE "${trace}" "${converted}")
message(STATUS "scale_smoke: all phases under the memory ceiling")
