// bench_compare: diff two sets of BENCH_*.json reports and fail on
// wall-time regressions, counter drift, or provenance mismatches.
//
//   bench_compare --validate <file-or-dir>
//       Schema-check one report set; exit 0 when every file is valid.
//   bench_compare [--threshold=0.10] [--counter-threshold=F]
//                 [--counter-ignore=PREFIX]... [--allow-mismatch]
//                 <old-file-or-dir> <new-file-or-dir>
//       Compare medians measurement by measurement and counters counter
//       by counter. Exit 0 when clean, 1 on wall-time regression,
//       counter drift above the counter threshold, or a disappeared
//       baseline measurement, 2 on usage / I/O / schema errors or — the
//       provenance gate — when the runs' msd-run-v1 manifests disagree
//       on build type/flags/obs/threads/seed and --allow-mismatch was
//       not given (comparing incomparable runs is an operator error,
//       not a regression).

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/bench_compare.h"
#include "obs/stats.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: bench_compare [--threshold=FRACTION]\n"
               "                     [--counter-threshold=FRACTION]\n"
               "                     [--counter-ignore=PREFIX]...\n"
               "                     [--allow-mismatch] OLD NEW\n"
               "       bench_compare --validate PATH\n"
               "OLD/NEW/PATH: a BENCH_*.json file or a directory of them.\n"
               "--validate also accepts an msd-stats-v1 JSONL file\n"
               "(sniffed from the header line): schema + monotone-\n"
               "timestamp validation, exit 2 on any violation.\n"
               "Default threshold: 0.10 (10%% median wall-time growth).\n"
               "Counters are report-only unless --counter-threshold is\n"
               "given (0 = exact match); --counter-ignore skips counters\n"
               "by name prefix (repeatable). Provenance mismatches exit 2\n"
               "unless --allow-mismatch.\n");
}

/// True when `path` is a file whose first line carries the msd-stats-v1
/// schema marker — the dispatch test for --validate.
bool looksLikeStatsFile(const std::string& path) {
  std::error_code ec;
  const bool isDirectory = std::filesystem::is_directory(path, ec);
  // A stat failure (missing path, permissions) is not a stats file
  // either way — the bench-set loader will surface the real error.
  if (ec || isDirectory) return false;
  std::ifstream in(path);
  if (!in.good()) return false;
  std::string first;
  std::getline(in, first);
  return first.find("\"msd-stats-v1\"") != std::string::npos;
}

int runValidateStats(const std::string& path) {
  try {
    const msd::obs::StatsSeries series = msd::obs::parseStatsFile(path);
    std::printf(
        "bench_compare: valid msd-stats-v1: %zu sample(s), %zu series, "
        "interval %.3g ms%s\n",
        series.sampleCount, series.series.size(), series.intervalMs,
        series.hasRun ? ", run manifest" : "");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
}

int runValidate(const std::string& path) {
  if (looksLikeStatsFile(path)) return runValidateStats(path);
  std::vector<msd::obs::BenchRun> runs;
  try {
    runs = msd::obs::loadBenchSet(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
  std::printf("bench_compare: %zu valid report(s) in %s\n", runs.size(),
              path.c_str());
  for (const msd::obs::BenchRun& run : runs) {
    std::printf("  %-32s scale=%s seed=%llu threads=%zu measurements=%zu%s\n",
                run.benchmark.c_str(), run.scale.c_str(),
                static_cast<unsigned long long>(run.seed), run.threads,
                run.measurements.size(),
                run.manifest ? " manifest=yes" : " manifest=no");
  }
  return 0;
}

int runCompare(const std::string& oldPath, const std::string& newPath,
               const msd::obs::CompareOptions& options, bool allowMismatch) {
  msd::obs::CompareReport report;
  try {
    const auto oldRuns = msd::obs::loadBenchSet(oldPath);
    const auto newRuns = msd::obs::loadBenchSet(newPath);
    report = msd::obs::compareBenchRuns(oldRuns, newRuns, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }

  // Provenance gate first: when the runs are not comparable, the numbers
  // below are noise, so refuse before printing a misleading diff.
  for (const std::string& mismatch : report.manifestMismatches) {
    std::fprintf(stderr, "bench_compare: provenance mismatch: %s\n",
                 mismatch.c_str());
  }
  if (!report.manifestMismatches.empty() && !allowMismatch) {
    std::fprintf(stderr,
                 "bench_compare: runs are not comparable (re-run with "
                 "--allow-mismatch to override)\n");
    return 2;
  }

  for (const msd::obs::CompareEntry& entry : report.entries) {
    std::printf("%s %s/%s: %.3f ms -> %.3f ms (%+.1f%%)\n",
                entry.regression ? "REGRESSION" : "ok", entry.benchmark.c_str(),
                entry.measurement.c_str(), entry.oldMedianMs, entry.newMedianMs,
                entry.relChange * 100.0);
  }
  for (const msd::obs::CounterDriftEntry& entry : report.counters) {
    // Unchanged counters stay silent; the interesting lines are deltas.
    if (entry.oldValue == entry.newValue && !entry.drift) continue;
    std::printf("%s counter %s/%s: %llu -> %llu (%+.1f%%)\n",
                entry.drift ? "DRIFT" : "note", entry.benchmark.c_str(),
                entry.counter.c_str(),
                static_cast<unsigned long long>(entry.oldValue),
                static_cast<unsigned long long>(entry.newValue),
                entry.relChange * 100.0);
  }
  for (const msd::obs::MemEntry& entry : report.mem) {
    // Peak RSS is never gated (allocator- and phase-order-dependent);
    // print it for trend-watching whenever both sides report one.
    // Labeled mem.samples entries already carry their label in the
    // benchmark field ("scale_sweep/n100000.streaming_series").
    const bool labeled =
        entry.benchmark.find('/') != std::string::npos;
    std::printf("note mem %s%s: %llu -> %llu (%+.1f%%)\n",
                entry.benchmark.c_str(),
                labeled ? "" : "/high_water_bytes",
                static_cast<unsigned long long>(entry.oldBytes),
                static_cast<unsigned long long>(entry.newBytes),
                entry.relChange * 100.0);
  }
  for (const std::string& key : report.added) {
    std::printf("new %s (no baseline)\n", key.c_str());
  }
  for (const std::string& key : report.counterAdded) {
    std::printf("new counter %s (no baseline)\n", key.c_str());
  }
  for (const std::string& key : report.missing) {
    std::fprintf(stderr, "bench_compare: missing from new set: %s\n",
                 key.c_str());
  }
  for (const std::string& key : report.counterMissing) {
    std::fprintf(stderr, "bench_compare: counter missing from new set: %s\n",
                 key.c_str());
  }
  if (!report.missing.empty()) return 1;
  if (report.anyRegression) {
    std::fprintf(stderr,
                 "bench_compare: median wall-time regression above %.1f%%\n",
                 options.wallThreshold * 100.0);
    return 1;
  }
  if (report.anyCounterDrift) {
    std::fprintf(stderr, "bench_compare: counter drift above %.1f%%\n",
                 options.counterThreshold * 100.0);
    return 1;
  }
  std::printf("bench_compare: no regression above %.1f%% across %zu "
              "measurement(s), %zu counter(s) checked\n",
              options.wallThreshold * 100.0, report.entries.size(),
              report.counters.size());
  return 0;
}

bool parseFraction(const std::string& arg, std::size_t prefixLen,
                   double* out) {
  char* end = nullptr;
  const std::string value = arg.substr(prefixLen);
  *out = std::strtod(value.c_str(), &end);
  return end != nullptr && *end == '\0' && !value.empty() && *out >= 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  msd::obs::CompareOptions options;
  bool validate = false;
  bool allowMismatch = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate") {
      validate = true;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      if (!parseFraction(arg, 12, &options.wallThreshold)) {
        std::fprintf(stderr, "bench_compare: bad threshold '%s'\n",
                     arg.substr(12).c_str());
        return 2;
      }
    } else if (arg.rfind("--counter-threshold=", 0) == 0) {
      if (!parseFraction(arg, 20, &options.counterThreshold)) {
        std::fprintf(stderr, "bench_compare: bad counter threshold '%s'\n",
                     arg.substr(20).c_str());
        return 2;
      }
    } else if (arg.rfind("--counter-ignore=", 0) == 0) {
      const std::string prefix = arg.substr(17);
      if (prefix.empty()) {
        std::fprintf(stderr, "bench_compare: empty --counter-ignore prefix\n");
        return 2;
      }
      options.counterIgnorePrefixes.push_back(prefix);
    } else if (arg == "--allow-mismatch") {
      allowMismatch = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_compare: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (validate) {
    if (paths.size() != 1) {
      usage();
      return 2;
    }
    return runValidate(paths[0]);
  }
  if (paths.size() != 2) {
    usage();
    return 2;
  }
  return runCompare(paths[0], paths[1], options, allowMismatch);
}
