// bench_compare: diff two sets of BENCH_*.json reports and fail on
// wall-time regressions.
//
//   bench_compare --validate <file-or-dir>
//       Schema-check one report set; exit 0 when every file is valid.
//   bench_compare [--threshold=0.10] <old-file-or-dir> <new-file-or-dir>
//       Compare medians measurement by measurement. Exit 0 when no
//       measurement's median wall time grew by more than the threshold,
//       1 on regression (or when a baseline measurement disappeared),
//       2 on usage / I/O / schema errors.

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "obs/bench_compare.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: bench_compare [--threshold=FRACTION] OLD NEW\n"
               "       bench_compare --validate PATH\n"
               "OLD/NEW/PATH: a BENCH_*.json file or a directory of them.\n"
               "Default threshold: 0.10 (10%% median wall-time growth).\n");
}

int runValidate(const std::string& path) {
  std::vector<msd::obs::BenchRun> runs;
  try {
    runs = msd::obs::loadBenchSet(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
  std::printf("bench_compare: %zu valid report(s) in %s\n", runs.size(),
              path.c_str());
  for (const msd::obs::BenchRun& run : runs) {
    std::printf("  %-32s scale=%s seed=%llu threads=%zu measurements=%zu\n",
                run.benchmark.c_str(), run.scale.c_str(),
                static_cast<unsigned long long>(run.seed), run.threads,
                run.measurements.size());
  }
  return 0;
}

int runCompare(const std::string& oldPath, const std::string& newPath,
               double threshold) {
  msd::obs::CompareReport report;
  try {
    const auto oldRuns = msd::obs::loadBenchSet(oldPath);
    const auto newRuns = msd::obs::loadBenchSet(newPath);
    report = msd::obs::compareBenchRuns(oldRuns, newRuns, threshold);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }

  for (const msd::obs::CompareEntry& entry : report.entries) {
    std::printf("%s %s/%s: %.3f ms -> %.3f ms (%+.1f%%)\n",
                entry.regression ? "REGRESSION" : "ok", entry.benchmark.c_str(),
                entry.measurement.c_str(), entry.oldMedianMs, entry.newMedianMs,
                entry.relChange * 100.0);
  }
  for (const std::string& key : report.added) {
    std::printf("new %s (no baseline)\n", key.c_str());
  }
  for (const std::string& key : report.missing) {
    std::fprintf(stderr, "bench_compare: missing from new set: %s\n",
                 key.c_str());
  }
  if (!report.missing.empty()) return 1;
  if (report.anyRegression) {
    std::fprintf(stderr,
                 "bench_compare: median wall-time regression above %.1f%%\n",
                 threshold * 100.0);
    return 1;
  }
  std::printf("bench_compare: no regression above %.1f%% across %zu "
              "measurement(s)\n",
              threshold * 100.0, report.entries.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.10;
  bool validate = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate") {
      validate = true;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      char* end = nullptr;
      const std::string value = arg.substr(12);
      threshold = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0' || value.empty() || threshold < 0.0) {
        std::fprintf(stderr, "bench_compare: bad threshold '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_compare: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (validate) {
    if (paths.size() != 1) {
      usage();
      return 2;
    }
    return runValidate(paths[0]);
  }
  if (paths.size() != 2) {
    usage();
    return 2;
  }
  return runCompare(paths[0], paths[1], threshold);
}
